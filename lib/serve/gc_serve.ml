(* Overload-protected serving layer. See gc_serve.mli for the contract.

   Concurrency picture: one server mutex guards the queue, the admission
   flags and the stats; each ticket has its own mutex + condvar; each
   handle has its own mutex for the latency EWMA and breaker state.
   Workers are domains (requests execute real kernels in parallel);
   clients may be systhreads or domains — they only ever block on a
   ticket condvar. Lock order is strictly server -> ticket / handle,
   never nested the other way, so no ordering cycles exist. *)

module Errors = Core.Errors
module Counters = Gc_observe.Counters
module Events = Gc_observe.Events
module Memgov = Gc_tensor.Memgov
module Dim = Gc_graph_ir.Dim
module Supervise = Gc_supervise

type config = {
  queue_depth : int;
  workers : int;
  default_deadline_ms : int option;
  max_retries : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
  ewma_alpha : float;
  safety_factor : float;
  seed : int;
  sanitize_outputs : bool;
  coalesce_window_ms : float;
  max_coalesce : int;
  retune_factor : float;
  retune_min_samples : int;
  quota_borrow : float;
  supervision : Supervise.policy;
}

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v -> v
  | None -> default

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v -> v
  | None -> default

let env_int_opt name =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v >= 1 -> Some v
  | _ -> None

let default_config () =
  {
    queue_depth = env_int "GC_SERVE_QUEUE_DEPTH" 16;
    workers = env_int "GC_SERVE_WORKERS" 2;
    default_deadline_ms = env_int_opt "GC_SERVE_DEADLINE_MS";
    max_retries = env_int "GC_SERVE_MAX_RETRIES" 2;
    backoff_base_ms = 1.;
    backoff_cap_ms = 50.;
    breaker_threshold = env_int "GC_SERVE_BREAKER_THRESHOLD" 5;
    breaker_cooldown_ms =
      float_of_int (env_int "GC_SERVE_BREAKER_COOLDOWN_MS" 100);
    ewma_alpha = 0.2;
    safety_factor = 1.5;
    seed = 0;
    sanitize_outputs = false;
    coalesce_window_ms =
      float_of_int (env_int "GC_SERVE_COALESCE_MS" 0) (* 0 = off *);
    max_coalesce = env_int "GC_SERVE_MAX_COALESCE" 8;
    retune_factor = env_float "GC_SERVE_RETUNE_FACTOR" 2.0;
    retune_min_samples = env_int "GC_SERVE_RETUNE_MIN_SAMPLES" 8;
    quota_borrow = env_float "GC_SERVE_QUOTA_BORROW" 0.5;
    supervision = Supervise.default_policy ();
  }

type outcome = (Core.Tensor.t list, Core.Errors.error) result

type ticket = {
  tk_mu : Mutex.t;
  tk_cv : Condition.t;
  mutable tk_result : outcome option;
}

type breaker_state = Closed | Open | Half_open

(* What a handle executes: a monomorphic compiled partition, or a
   shape-polymorphic compilation. A poly handle additionally carries its
   coalescing symbol — the batch-like symbol along which in-flight
   requests may be concatenated into one execution — or [None] when the
   graph's shape doesn't admit coalescing (see [coalesce_sym_of]).
   [Unbound] is a parked model: the registry dropped the artifact under
   budget pressure and will rebind on re-admission; traffic meanwhile
   resolves [Invalid_input] (the registry's residency path prevents it). *)
type target = Mono of Core.t | Poly of Core.poly * string option | Unbound

type handle = {
  h_name : string;
  mutable h_target : target;  (* guarded by h_mu; rebind on hot-swap/park *)
  h_weight : float;  (* weighted-fair admission share (immutable) *)
  h_mu : Mutex.t;
  mutable h_ewma_ms : float option;
  mutable h_consec_fb : int;  (* consecutive fallbacks-to-interpreter *)
  mutable h_state : breaker_state;
  mutable h_opened_at : float;  (* when the breaker last tripped open *)
  mutable h_best_ms : float option;
      (* best latency EWMA the handle has sustained — the schedule's
         demonstrated expectation; the online-retune detector fires when
         the current EWMA loses to it by [retune_factor] *)
  mutable h_lat_samples : int;  (* completions since the last demotion *)
  (* artifact quarantine (all guarded by h_mu): crash-correlated fault
     stamps within the correlation window; while quarantined, traffic
     reroutes to the reference interpreter and only a background canary —
     a re-execution on the recorded probe input, validated against the
     reference — re-admits the compiled artifact *)
  mutable h_crash_stamps : float list;
  mutable h_quarantined : bool;
  mutable h_quarantined_at : float;
  mutable h_probe : (Core.Logical_tensor.t * Core.Tensor.t) list option;
      (* last bindings seen by the compiled path: the canary's input *)
  mutable h_next_canary : float;
  (* per-model admission tallies (all guarded by t.mu) *)
  mutable h_queued : int;  (* requests of this handle currently queued *)
  mutable h_submitted : int;
  mutable h_admitted : int;
  mutable h_ok : int;
  mutable h_shed : int;  (* all Overloaded outcomes charged to the model *)
  mutable h_quota_shed : int;  (* subset of h_shed: over weighted share *)
  mutable h_registered : bool;  (* counts toward the fair-share total *)
}

type request = {
  rq_handle : handle;
  rq_bindings : (Core.Logical_tensor.t * Core.Tensor.t) list;
  rq_deadline : float option;  (* absolute, Unix.gettimeofday seconds *)
  rq_deadline_ms : int option;  (* the original relative deadline *)
  rq_env : (string * int) list option;
      (* resolved symbol environment of a poly request (its shape class);
         [None] for mono handles or unresolvable bindings *)
  rq_ticket : ticket;
}

(* One worker slot: the supervision unit. The domain occupying a slot can
   die (respawned under the restart budget) or be superseded (a stuck
   domain is signalled out via the slot epoch and replaced). Heartbeat /
   busy / epoch are atomics so the monitor reads them without the server
   lock; restart bookkeeping is guarded by [t.mu]. *)
type wslot = {
  ws_idx : int;
  mutable ws_domain : unit Domain.t option;  (* guarded by t.mu *)
  ws_beat : float Atomic.t;  (* wall-clock heartbeat stamp *)
  ws_busy : bool Atomic.t;  (* processing a request right now *)
  ws_epoch : int Atomic.t;  (* supersession signal: mismatched worker exits *)
  ws_dead : bool Atomic.t;  (* the occupying domain exited uncleanly *)
  mutable ws_restarts : float list;  (* respawn stamps inside the window *)
  mutable ws_backoff_ms : float;  (* decorrelated-jitter backoff state *)
  mutable ws_next_respawn : float;  (* earliest wall clock for a respawn *)
  mutable ws_budget_logged : bool;  (* exhaustion event recorded once *)
  mutable ws_stuck_logged : bool;  (* staleness counted once per episode *)
}

type t = {
  cfg : config;
  mu : Mutex.t;
  cv_work : Condition.t;  (* workers park here when the queue is empty *)
  queue : request Queue.t;
  mutable accepting : bool;
  mutable stopping : bool;  (* workers exit once true and queue is empty *)
  mutable in_flight : int;
  mutable slots : wslot array;
  mutable zombies : unit Domain.t list;
      (* dead or superseded worker domains, joined at shutdown *)
  mutable handles : handle list;  (* every handle, for the canary sweep *)
  mutable sup_reg : Supervise.registration option;
  mutable next_handle : int;
  (* stats (all guarded by [mu]) *)
  mutable s_submitted : int;
  mutable s_admitted : int;
  mutable s_completed : int;
  mutable s_ok : int;
  mutable s_overloaded : int;
  mutable s_shed_expired : int;
  mutable s_timeouts : int;
  mutable s_faults : int;
  mutable s_budget_rejects : int;
  mutable s_fallbacks : int;
  mutable s_coalesced_batches : int;
  mutable s_coalesced_tickets : int;
  mutable s_quota_shed : int;
  mutable total_weight : float;  (* sum of registered handles' weights *)
}

let now () = Unix.gettimeofday ()

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* {2 Tickets} *)

let new_ticket () =
  { tk_mu = Mutex.create (); tk_cv = Condition.create (); tk_result = None }

(* Double resolutions ever observed, process-wide. Resolve-twice is
   harmless by construction (first result wins) but must also never
   happen while supervision kills, supersedes and respawns workers — the
   health bench pins this at zero. *)
let c_double_resolves = Atomic.make 0
let double_resolve_count () = Atomic.get c_double_resolves

(* Idempotent: the queue pop is exclusive so each ticket has one resolver,
   but resolve-twice must still be harmless. *)
let resolve tk outcome =
  locked tk.tk_mu (fun () ->
      if tk.tk_result = None then begin
        tk.tk_result <- Some outcome;
        Condition.broadcast tk.tk_cv
      end
      else Atomic.incr c_double_resolves)

let await tk =
  locked tk.tk_mu (fun () ->
      while tk.tk_result = None do
        Condition.wait tk.tk_cv tk.tk_mu
      done;
      Option.get tk.tk_result)

let peek tk = locked tk.tk_mu (fun () -> tk.tk_result)

(* {2 Outcome accounting (server stats + global counters)} *)

(* The handle's current target, read under its lock (rebind/park mutate
   it concurrently). *)
let target_of h = locked h.h_mu (fun () -> h.h_target)

let is_bound h = target_of h <> Unbound

let record_outcome t h (outcome : outcome) ~used_fallback =
  locked t.mu (fun () ->
      t.s_completed <- t.s_completed + 1;
      if used_fallback then t.s_fallbacks <- t.s_fallbacks + 1;
      match outcome with
      | Ok _ ->
          t.s_ok <- t.s_ok + 1;
          h.h_ok <- h.h_ok + 1;
          Gc_observe.Labels.incr ~label:h.h_name "ok"
      | Error (Errors.Overloaded _) ->
          t.s_overloaded <- t.s_overloaded + 1;
          h.h_shed <- h.h_shed + 1;
          Gc_observe.Labels.incr ~label:h.h_name "shed"
      | Error (Errors.Timeout _) ->
          t.s_timeouts <- t.s_timeouts + 1;
          Gc_observe.Labels.incr ~label:h.h_name "timeout"
      | Error (Errors.Runtime_fault _) ->
          t.s_faults <- t.s_faults + 1;
          Gc_observe.Labels.incr ~label:h.h_name "fault"
      | Error (Errors.Resource_exhausted _) ->
          t.s_budget_rejects <- t.s_budget_rejects + 1;
          Gc_observe.Labels.incr ~label:h.h_name "budget_reject";
          Counters.serve_budget_reject ()
      | Error (Errors.Invalid_input _ | Errors.Compile_error _) -> ())

(* {2 Deadlines} *)

let remaining_ms rq =
  match rq.rq_deadline with
  | None -> None
  | Some dl -> Some (int_of_float (ceil ((dl -. now ()) *. 1000.)))

let expired rq =
  match rq.rq_deadline with None -> false | Some dl -> now () > dl

let timeout_error ~site rq =
  let ms = Option.value rq.rq_deadline_ms ~default:0 in
  Errors.Timeout
    { site; timeout_ms = ms; ctx = [ ("handle", rq.rq_handle.h_name) ] }

(* {2 Circuit breaker} *)

(* What the worker should do with this request, given the handle's breaker
   state. Deciding a probe transitions Open -> Half_open, so concurrent
   requests on the same handle cannot all probe at once: the first gets
   the probe, the rest keep short-circuiting until it resolves. *)
type route = Compiled | Probe | Shortcircuit

let route_of cfg h =
  locked h.h_mu (fun () ->
      match h.h_state with
      | Closed -> Compiled
      | Half_open -> Shortcircuit
      | Open ->
          if (now () -. h.h_opened_at) *. 1000. >= cfg.breaker_cooldown_ms
          then begin
            h.h_state <- Half_open;
            Counters.breaker_probe ();
            Probe
          end
          else Shortcircuit)

let note_compiled_success h =
  locked h.h_mu (fun () ->
      h.h_consec_fb <- 0;
      if h.h_state = Half_open then begin
        h.h_state <- Closed;
        Counters.breaker_close ()
      end)

(* The compiled path faulted hard enough that we degraded to the
   interpreter (whether or not the interpreter then succeeded). *)
let note_fallback cfg h =
  locked h.h_mu (fun () ->
      h.h_consec_fb <- h.h_consec_fb + 1;
      match h.h_state with
      | Half_open ->
          (* the probe failed: back to Open for another cooldown *)
          h.h_state <- Open;
          h.h_opened_at <- now ();
          Counters.breaker_open ()
      | Closed when h.h_consec_fb >= cfg.breaker_threshold ->
          h.h_state <- Open;
          h.h_opened_at <- now ();
          Counters.breaker_open ()
      | Closed | Open -> ())

(* The tuning scope the handle's compiled code keys under — what an
   online demotion drops from the tuning DB. *)
let tune_scope_of h =
  match target_of h with
  | Mono core -> Core.tune_scope core
  | Poly (p, _) -> Some (Core.poly_tune_scope p)
  | Unbound -> None

let note_latency cfg h dt_ms =
  (* EWMA update and the demotion decision under the handle lock; the
     demotion's side effects (counter, DB drop, background retunes)
     outside it — demote_scope takes the tuner's own lock and nothing
     orders handle locks after it *)
  let demote =
    locked h.h_mu (fun () ->
        let e =
          match h.h_ewma_ms with
          | None -> dt_ms
          | Some e -> (cfg.ewma_alpha *. dt_ms) +. ((1. -. cfg.ewma_alpha) *. e)
        in
        h.h_ewma_ms <- Some e;
        h.h_lat_samples <- h.h_lat_samples + 1;
        (match h.h_best_ms with
        | Some b when e >= b -> ()
        | _ -> h.h_best_ms <- Some e);
        if
          cfg.retune_factor > 0.
          && Gc_tuning.Autotune.enabled ()
          && h.h_lat_samples >= cfg.retune_min_samples
        then
          match h.h_best_ms with
          | Some best when e > cfg.retune_factor *. best ->
              (* the schedule is losing to its demonstrated expectation:
                 demote and restart the baseline so one regression does
                 not re-fire on every subsequent completion *)
              h.h_best_ms <- None;
              h.h_lat_samples <- 0;
              true
          | _ -> false
        else false)
  in
  if demote then
    match tune_scope_of h with
    | Some scope ->
        Counters.retune_triggered ();
        ignore (Gc_tuning.Autotune.demote_scope scope)
    | None -> ()

let breaker_state h = locked h.h_mu (fun () -> h.h_state)
let ewma_ms h = locked h.h_mu (fun () -> h.h_ewma_ms)

(* {2 Artifact quarantine} *)

let is_quarantined h = locked h.h_mu (fun () -> h.h_quarantined)

(* A compiled execution that degraded to the interpreter is a
   crash-correlated fault for the artifact. Enough of them inside the
   correlation window and the artifact is quarantined: traffic reroutes
   to the reference interpreter, the artifact's tuning scope is demoted
   (a quarantined scope also re-tunes — the crash may be a bad
   schedule), and only a reference-validated canary re-admits it. *)
let note_crash cfg h =
  let pol = cfg.supervision in
  let tripped =
    locked h.h_mu (fun () ->
        if (not pol.Supervise.sup_enabled) || h.h_quarantined then false
        else begin
          let t_now = now () in
          let horizon = t_now -. (pol.Supervise.quarantine_window_ms /. 1000.) in
          h.h_crash_stamps <-
            t_now :: List.filter (fun s -> s >= horizon) h.h_crash_stamps;
          if
            pol.Supervise.quarantine_threshold > 0
            && List.length h.h_crash_stamps >= pol.Supervise.quarantine_threshold
          then begin
            h.h_quarantined <- true;
            h.h_quarantined_at <- t_now;
            h.h_next_canary <- t_now +. (pol.Supervise.canary_ms /. 1000.);
            h.h_crash_stamps <- [];
            true
          end
          else false
        end)
  in
  if tripped then begin
    Counters.quarantine ();
    Events.record ~kind:"quarantine" ~component:h.h_name
      (Printf.sprintf "%d crash-correlated faults in %.0fms; rerouting to \
                       reference interpreter"
         cfg.supervision.Supervise.quarantine_threshold
         cfg.supervision.Supervise.quarantine_window_ms);
    match tune_scope_of h with
    | Some scope -> ignore (Gc_tuning.Autotune.demote_scope scope)
    | None -> ()
  end

(* Exported latency observation: feeds the same EWMA + online-retune
   detector the workers feed, for callers (and tests) that execute a
   handle's partition outside the serving queue. *)
let observe_latency t h ms = note_latency t.cfg h ms

(* {2 Request processing (worker side)} *)

(* Exponential backoff with decorrelated jitter, deterministic per worker:
   sleep_{n+1} = min(cap, uniform[base, 3 * sleep_n]). Never sleeps past
   the request's remaining deadline. *)
let backoff_sleep cfg rng ~prev_ms ~remaining =
  let span = (3. *. prev_ms) -. cfg.backoff_base_ms in
  let ms =
    cfg.backoff_base_ms +. (if span > 0. then Random.State.float rng span else 0.)
  in
  let ms = Float.min ms cfg.backoff_cap_ms in
  let ms =
    match remaining with
    | None -> ms
    | Some r -> Float.min ms (float_of_int r /. 2.)
  in
  if ms > 0. then Unix.sleepf (ms /. 1000.);
  Float.max ms cfg.backoff_base_ms

let exec_options cfg =
  { (Core.default_exec_options ()) with
    Core.retries = 0;
    fallback = false;
    sanitize_outputs = cfg.sanitize_outputs;
  }

(* Target-dispatched execution: the checked compiled path and the
   interpreter degraded path, each for both handle kinds. A request that
   reaches execution on an [Unbound] handle (the registry parks only idle
   models, so this is belt and braces) resolves typed, never raises. *)
let unbound_error h =
  Errors.Invalid_input
    {
      what = "model is not resident (parked or retired)";
      ctx = [ ("handle", h.h_name) ];
    }

let exec_checked ~options ?deadline_ms h bindings =
  match target_of h with
  | Mono core -> Core.execute_checked_report ~options ?deadline_ms core bindings
  | Poly (p, _) ->
      Core.execute_poly_checked_report ~options ?deadline_ms p bindings
  | Unbound -> Error (unbound_error h)

let exec_fallback ?deadline_ms h bindings =
  match target_of h with
  | Mono core -> Core.execute_fallback ?deadline_ms core bindings
  | Poly (p, _) -> Core.execute_poly_fallback ?deadline_ms p bindings
  | Unbound -> Error (unbound_error h)

let run_fallback_path t rq ~via =
  let h = rq.rq_handle in
  (match via with
  | `Breaker_open -> Counters.breaker_shortcircuit ()
  | `Quarantined -> () (* no breaker mutation: quarantine owns the route *)
  | `Degraded ->
      note_fallback t.cfg h;
      note_crash t.cfg h);
  match exec_fallback ?deadline_ms:(remaining_ms rq) h rq.rq_bindings with
  | Ok outs -> (Ok outs, true)
  | Error e -> (Error e, true)

let process t rq =
  let h = rq.rq_handle in
  let cfg = t.cfg in
  let rng = Random.State.make [| cfg.seed; Hashtbl.hash h.h_name |] in
  if is_quarantined h then run_fallback_path t rq ~via:`Quarantined
  else
  match route_of cfg h with
  | Shortcircuit -> run_fallback_path t rq ~via:`Breaker_open
  | Compiled | Probe ->
      (* the latest bindings the compiled path sees double as the canary's
         probe input should this artifact be quarantined later *)
      locked h.h_mu (fun () -> h.h_probe <- Some rq.rq_bindings);
      let opts = exec_options cfg in
      let rec attempt tries prev_ms =
        if expired rq then (Error (timeout_error ~site:"serve.retry" rq), false)
        else begin
          let t0 = now () in
          match
            exec_checked ~options:opts ?deadline_ms:(remaining_ms rq) h
              rq.rq_bindings
          with
          | Ok (outs, _) ->
              note_latency cfg h ((now () -. t0) *. 1000.);
              note_compiled_success h;
              (Ok outs, false)
          | Error (Errors.Runtime_fault _) when tries < cfg.max_retries ->
              Counters.exec_retry ();
              let slept =
                backoff_sleep cfg rng ~prev_ms ~remaining:(remaining_ms rq)
              in
              attempt (tries + 1) slept
          | Error (Errors.Runtime_fault _) ->
              run_fallback_path t rq ~via:`Degraded
          | Error e -> (Error e, false)
        end
      in
      attempt 0 cfg.backoff_base_ms

let shed rq reason extra_ctx =
  Counters.serve_overloaded ();
  let ctx =
    [ ("handle", rq.rq_handle.h_name) ]
    @ extra_ctx
    @
    match rq.rq_deadline_ms with
    | Some ms -> [ ("deadline_ms", string_of_int ms) ]
    | None -> []
  in
  resolve rq.rq_ticket (Error (Errors.Overloaded { site = "serve"; what = reason; ctx }))

let shed_expired_in_queue t rq =
  locked t.mu (fun () ->
      t.s_overloaded <- t.s_overloaded + 1;
      t.s_shed_expired <- t.s_shed_expired + 1;
      t.s_completed <- t.s_completed + 1;
      rq.rq_handle.h_shed <- rq.rq_handle.h_shed + 1;
      Gc_observe.Labels.incr ~label:rq.rq_handle.h_name "shed");
  Counters.serve_shed_expired ();
  shed rq "deadline expired in queue" []

(* Solo dispatch of one request (the non-coalesced path). *)
let run_solo t rq =
  let outcome, used_fallback =
    try process t rq
    with e ->
      (* belt and braces: nothing may escape a worker domain *)
      (Error (Errors.classify ~site:"serve.worker" e), false)
  in
  record_outcome t rq.rq_handle outcome ~used_fallback;
  resolve rq.rq_ticket outcome

(* {2 Request coalescing (continuous batching)}

   A worker that pops a poly request whose handle admits coalescing holds
   it for a short gather window, pulling {e compatible} queued requests —
   same handle, same symbol environment apart from the coalescing symbol,
   physically identical non-symbolic (weight) bindings — and executes
   them as one batched request: inputs concatenated along the coalescing
   axis, one bucketed execute, outputs split back per ticket. The window
   never extends past any gathered ticket's latest safe dispatch time
   (deadline minus the EWMA execute estimate times the safety factor), so
   gathering itself cannot cause a deadline miss; a ticket that still
   expires between gather and dispatch is counted as a
   [window_deadline_violation] — the invariant tests pin that count to
   zero. A failed batch falls back to per-ticket solo execution so one
   poisoned request cannot sink its batchmates. *)

(* Two environments are coalescible when they agree on every symbol
   except the coalescing one. *)
let env_compatible ~sym a b =
  List.length a = List.length b
  && List.for_all
       (fun (s, v) ->
         s = sym || match List.assoc_opt s b with Some v' -> v = v' | None -> false)
       a

let binding_of rq (lt : Core.Logical_tensor.t) =
  List.find_map
    (fun ((l : Core.Logical_tensor.t), v) -> if l.id = lt.id then Some v else None)
    rq.rq_bindings

(* Non-symbolic inputs (weights, masks of fixed shape) must be the same
   physical tensors: they are passed through unconcatenated, so differing
   values would silently serve one client's weights to another. *)
let shared_inputs_equal p base rq =
  List.for_all
    (fun (lt : Core.Logical_tensor.t) ->
      Dim.has_sym lt.dims
      ||
      match (binding_of base lt, binding_of rq lt) with
      | Some a, Some b -> a == b
      | _ -> false)
    (Core.poly_graph p).inputs

let compatible p ~sym base env rq =
  rq.rq_handle == base.rq_handle
  && (match rq.rq_env with
     | Some e -> env_compatible ~sym env e
     | None -> false)
  && shared_inputs_equal p base rq

(* Pull up to [room] compatible, unexpired requests out of the queue,
   preserving the order of everything left behind. *)
let extract_compatible t p ~sym base env room =
  locked t.mu (fun () ->
      let taken = ref [] and kept = Queue.create () in
      Queue.iter
        (fun rq ->
          if
            List.length !taken < room
            && (not (expired rq))
            && compatible p ~sym base env rq
          then begin
            rq.rq_handle.h_queued <- rq.rq_handle.h_queued - 1;
            taken := rq :: !taken
          end
          else Queue.push rq kept)
        t.queue;
      Queue.clear t.queue;
      Queue.transfer kept t.queue;
      List.rev !taken)

(* Latest moment [rq] may still be dispatched without predictably missing
   its deadline, given the handle's latency estimate. *)
let safe_start cfg h rq =
  match rq.rq_deadline with
  | None -> infinity
  | Some dl -> (
      match ewma_ms h with
      | Some e -> dl -. (e *. cfg.safety_factor /. 1000.)
      | None -> now () (* no estimate yet: deadline-bearing work is not held *))

let gather_window t p ~sym base env =
  let cfg = t.cfg in
  let h = base.rq_handle in
  let taken = ref [ base ] in
  let window_end = ref (now () +. (cfg.coalesce_window_ms /. 1000.)) in
  let clamp rq = window_end := Float.min !window_end (safe_start cfg h rq) in
  clamp base;
  let rec loop () =
    let room = cfg.max_coalesce - List.length !taken in
    if room > 0 then begin
      let pulled = extract_compatible t p ~sym base env room in
      List.iter clamp pulled;
      taken := !taken @ pulled;
      if List.length !taken < cfg.max_coalesce && now () < !window_end then begin
        Unix.sleepf 0.0002;
        loop ()
      end
    end
  in
  loop ();
  !taken

(* Concatenate the gathered requests' symbolic inputs along the
   coalescing axis; non-symbolic inputs pass through from [base]. *)
let batch_bindings p base rqs =
  List.map
    (fun (lt : Core.Logical_tensor.t) ->
      let v =
        if Dim.has_sym lt.dims then
          Core.Tensor.concat0
            (List.map (fun rq -> Option.get (binding_of rq lt)) rqs)
        else Option.get (binding_of base lt)
      in
      (lt, v))
    (Core.poly_graph p).inputs

let min_remaining_ms rqs =
  List.fold_left
    (fun acc rq ->
      match (acc, remaining_ms rq) with
      | None, r | r, None -> r
      | Some a, Some b -> Some (min a b))
    None rqs

let run_coalesced t p ~sym base env =
  let cfg = t.cfg in
  let h = base.rq_handle in
  let taken = gather_window t p ~sym base env in
  (* Everything gathered was unexpired; a ticket dead by dispatch time
     expired during our window — the violation the clamp exists to
     prevent. *)
  let live, dead = List.partition (fun rq -> not (expired rq)) taken in
  List.iter
    (fun rq ->
      Counters.window_deadline_violation ();
      shed_expired_in_queue t rq)
    dead;
  match live with
  | [] -> ()
  | [ rq ] -> run_solo t rq
  | rqs -> (
      let sizes =
        List.map (fun rq -> List.assoc sym (Option.get rq.rq_env)) rqs
      in
      let n = List.length rqs in
      let result =
        try
          let bindings = batch_bindings p base rqs in
          let t0 = now () in
          let r =
            exec_checked ~options:(exec_options cfg)
              ?deadline_ms:(min_remaining_ms rqs) h bindings
          in
          (match r with
          | Ok _ ->
              note_latency cfg h ((now () -. t0) *. 1000.);
              note_compiled_success h
          | Error _ -> ());
          r
        with e -> Error (Errors.classify ~site:"serve.coalesce" e)
      in
      match result with
      | Ok (outs, _) ->
          Counters.coalesced_batch ~tickets:n;
          locked t.mu (fun () ->
              t.s_coalesced_batches <- t.s_coalesced_batches + 1;
              t.s_coalesced_tickets <- t.s_coalesced_tickets + n);
          (* split each output along the coalescing axis, ticket order *)
          let splits = List.map (fun o -> Core.Tensor.split0 o sizes) outs in
          List.iteri
            (fun i rq ->
              let mine = List.map (fun parts -> List.nth parts i) splits in
              record_outcome t rq.rq_handle (Ok mine) ~used_fallback:false;
              resolve rq.rq_ticket (Ok mine))
            rqs
      | Error _ ->
          (* batch-level failure: isolate by re-running each ticket solo
             (with its own retries, breaker routing and fallback) *)
          List.iter (run_solo t) rqs)

(* A request is a coalescing candidate when the feature is on, its handle
   is polymorphic with a coalescible shape, its environment resolved, the
   breaker is closed (probe and short-circuit traffic stays solo), and
   its deadline leaves room for the gather window plus the predicted
   execute — a tight-deadline ticket dispatches solo immediately rather
   than gambling its deadline on the window. *)
let coalesce_plan t rq =
  if t.cfg.coalesce_window_ms <= 0. then None
  else
    let too_tight =
      match remaining_ms rq with
      | None -> false
      | Some r ->
          let predicted =
            match ewma_ms rq.rq_handle with
            | Some e -> e *. t.cfg.safety_factor
            | None -> 0.
          in
          float_of_int r < t.cfg.coalesce_window_ms +. predicted
    in
    if too_tight then None
    else
      match (target_of rq.rq_handle, rq.rq_env) with
      | Poly (p, Some sym), Some env when breaker_state rq.rq_handle = Closed ->
          Some (p, sym, env)
      | _ -> None

(* Workers are bound to the slot epoch they were spawned under: the
   monitor supersedes a stuck worker by bumping the slot epoch and
   spawning a replacement; the old domain observes the mismatch at its
   next loop top, after resolving whatever ticket it holds (a popped
   request has exactly one resolver, so supersession cannot double- or
   un-resolve it), and exits cleanly into the zombie list. *)
let worker_loop t ~(slot : wslot) ~my_epoch =
  let beat () = Atomic.set slot.ws_beat (now ()) in
  let owns_slot () = Atomic.get slot.ws_epoch = my_epoch in
  (* The model this worker last dispatched: the fault scope its probes
     carry, so a scoped arm ("worker_death:10@model") produces faults
     correlated with that model's traffic and no one else's. *)
  let last_model = ref None in
  let rec next () =
    beat ();
    if not (owns_slot ()) then () (* superseded: exit *)
    else begin
      (* Supervision fault site, at the loop boundary only: no lock is
         held and no ticket has been popped, so an injected death here
         never orphans a request — survivors drain the queue. *)
      Gc_faultinject.worker_death_check ?scope:!last_model ();
      Mutex.lock t.mu;
      while Queue.is_empty t.queue && not t.stopping && owns_slot () do
        Condition.wait t.cv_work t.mu
      done;
      if Queue.is_empty t.queue || not (owns_slot ()) then
        Mutex.unlock t.mu (* stopping and drained, or superseded: exit *)
      else begin
        let rq = Queue.pop t.queue in
        rq.rq_handle.h_queued <- rq.rq_handle.h_queued - 1;
        t.in_flight <- t.in_flight + 1;
        Mutex.unlock t.mu;
        last_model := Some rq.rq_handle.h_name;
        if owns_slot () then Atomic.set slot.ws_busy true;
        beat ();
        (* a stuck spin fires after the pop, while busy: the heartbeat
           goes stale under the monitor's nose, but the held ticket still
           resolves exactly once when the spin ends *)
        Gc_faultinject.stuck_worker_check ~scope:rq.rq_handle.h_name ();
        (* Shed-before-dispatch: no execute work for a request whose
           waiter has already timed out. *)
        (if expired rq then shed_expired_in_queue t rq
         else
           match coalesce_plan t rq with
           | Some (p, sym, env) -> run_coalesced t p ~sym rq env
           | None -> run_solo t rq);
        locked t.mu (fun () -> t.in_flight <- t.in_flight - 1);
        if owns_slot () then Atomic.set slot.ws_busy false;
        next ()
      end
    end
  in
  next ()

(* The spawn wrapper is the death detector: the worker body may only exit
   by returning (drain or supersession); anything escaping — including an
   injected [worker_death] — marks the slot dead for the monitor. *)
let spawn_into_slot t slot =
  let my_epoch = Atomic.get slot.ws_epoch in
  Atomic.set slot.ws_beat (now ());
  slot.ws_domain <-
    Some
      (Domain.spawn (fun () ->
           try worker_loop t ~slot ~my_epoch
           with e ->
             Atomic.set slot.ws_busy false;
             Atomic.set slot.ws_dead true;
             Events.record ~kind:"serve_worker_death"
               ~component:(Printf.sprintf "serve:w%d" slot.ws_idx)
               (Printexc.to_string e);
             (* the queue may hold work and every sibling may be parked;
                wake one so a single death cannot strand a quiet queue *)
             locked t.mu (fun () -> Condition.broadcast t.cv_work)))

(* {2 Supervision (monitor-thread side)} *)

let live_workers t =
  Array.fold_left
    (fun acc s -> if Atomic.get s.ws_dead then acc else acc + 1)
    0 t.slots

let budget_exhausted pol slot ~at =
  let horizon = at -. (pol.Supervise.restart_window_ms /. 1000.) in
  slot.ws_restarts <- List.filter (fun s -> s >= horizon) slot.ws_restarts;
  List.length slot.ws_restarts >= pol.Supervise.restart_budget

(* Respawn a dead slot under the restart budget, with decorrelated-jitter
   spacing between consecutive respawns of the same slot. A slot that
   exhausts its budget inside the window stays down — the tier reports
   Degraded — until the window slides, rather than feeding a spawn storm
   on a deterministically crashing worker. *)
let heal_dead_slot t pol slot =
  let t_now = now () in
  Mutex.lock t.mu;
  if t.stopping then Mutex.unlock t.mu
  else if budget_exhausted pol slot ~at:t_now then begin
    let log = not slot.ws_budget_logged in
    slot.ws_budget_logged <- true;
    Mutex.unlock t.mu;
    if log then
      Events.record ~kind:"restart_budget_exhausted"
        ~component:(Printf.sprintf "serve:w%d" slot.ws_idx)
        (Printf.sprintf "%d restarts inside %.0fms; tier degraded until the \
                         window slides"
           pol.Supervise.restart_budget pol.Supervise.restart_window_ms)
  end
  else if t_now < slot.ws_next_respawn then Mutex.unlock t.mu
  else begin
    (match slot.ws_domain with
    | Some d -> t.zombies <- d :: t.zombies
    | None -> ());
    slot.ws_domain <- None;
    slot.ws_restarts <- t_now :: slot.ws_restarts;
    slot.ws_budget_logged <- false;
    slot.ws_backoff_ms <-
      Supervise.next_backoff_ms ~policy:pol ~prev:slot.ws_backoff_ms;
    slot.ws_next_respawn <- t_now +. (slot.ws_backoff_ms /. 1000.);
    (* count before the slot reads live again: an observer that sees the
       tier back at capacity must already see the restart counted *)
    Counters.worker_restarted ();
    Atomic.set slot.ws_dead false;
    spawn_into_slot t slot;
    Mutex.unlock t.mu;
    Events.record ~kind:"worker_restart"
      ~component:(Printf.sprintf "serve:w%d" slot.ws_idx)
      (Printf.sprintf "respawned; next respawn backoff %.1fms"
         slot.ws_backoff_ms)
  end

(* Supersede a busy worker whose heartbeat went stale: bump the slot epoch
   (the old domain exits at its next loop top, after resolving the ticket
   it holds) and spawn a replacement so capacity recovers immediately.
   Indistinguishable from a legitimately long execute — which is exactly
   why supersession is safe for both: nothing is killed, the slow domain
   finishes its work and leaves. *)
let supersede_stuck_slot t slot =
  Mutex.lock t.mu;
  if t.stopping then Mutex.unlock t.mu
  else begin
    (match slot.ws_domain with
    | Some d -> t.zombies <- d :: t.zombies
    | None -> ());
    slot.ws_domain <- None;
    ignore (Atomic.fetch_and_add slot.ws_epoch 1);
    Atomic.set slot.ws_busy false;
    spawn_into_slot t slot;
    Mutex.unlock t.mu;
    (* the superseded domain may be parked on cv_work (raced the pop):
       wake it so it observes the epoch bump and exits *)
    locked t.mu (fun () -> Condition.broadcast t.cv_work);
    Counters.worker_superseded ();
    Events.record ~kind:"worker_supersede"
      ~component:(Printf.sprintf "serve:w%d" slot.ws_idx)
      "stale heartbeat while busy; slot re-spawned, old domain exits at \
       its next loop boundary"
  end

(* Background canary: re-execute a quarantined artifact's compiled path on
   the recorded probe input and compare against the reference
   interpreter. Only a validated artifact returns to service. *)
let canary_tolerance = 2e-3

let run_canary t h =
  let probe =
    locked h.h_mu (fun () ->
        if h.h_quarantined && now () >= h.h_next_canary then h.h_probe
        else None)
  in
  match probe with
  | None -> ()
  | Some bindings ->
      Counters.canary_probe ();
      let pol = t.cfg.supervision in
      let verdict =
        try
          match exec_checked ~options:(exec_options t.cfg) h bindings with
          | Error e -> Error (Errors.to_string e)
          | Ok (outs, _) -> (
              match exec_fallback h bindings with
              | Error e -> Error ("reference failed: " ^ Errors.to_string e)
              | Ok refs ->
                  if
                    List.length outs = List.length refs
                    && List.for_all2
                         (Core.Tensor.allclose ~rtol:canary_tolerance
                            ~atol:canary_tolerance)
                         outs refs
                  then Ok ()
                  else Error "outputs diverged from reference")
        with e -> Error (Printexc.to_string e)
      in
      (match verdict with
      | Ok () ->
          locked h.h_mu (fun () ->
              h.h_quarantined <- false;
              h.h_crash_stamps <- [];
              h.h_consec_fb <- 0;
              h.h_state <- Closed);
          Counters.canary_readmission ();
          Events.record ~kind:"canary_readmission" ~component:h.h_name
            "canary validated against the reference; artifact re-admitted"
      | Error why ->
          locked h.h_mu (fun () ->
              h.h_next_canary <- now () +. (pol.Supervise.canary_ms /. 1000.));
          Events.record ~kind:"canary_failed" ~component:h.h_name why)

let tick_serve t =
  let pol = t.cfg.supervision in
  let stop = locked t.mu (fun () -> t.stopping) in
  if not stop then begin
    Array.iter
      (fun slot ->
        if Atomic.get slot.ws_dead then heal_dead_slot t pol slot
        else if Atomic.get slot.ws_busy then begin
          let age_ms = (now () -. Atomic.get slot.ws_beat) *. 1000. in
          if age_ms > pol.Supervise.stale_ms then begin
            if not slot.ws_stuck_logged then begin
              slot.ws_stuck_logged <- true;
              Counters.heartbeat_missed ()
            end;
            supersede_stuck_slot t slot
          end
          else slot.ws_stuck_logged <- false
        end
        else slot.ws_stuck_logged <- false)
      t.slots;
    let handles = locked t.mu (fun () -> t.handles) in
    List.iter (run_canary t) handles
  end

let quarantined_handles t =
  let handles = locked t.mu (fun () -> t.handles) in
  List.length (List.filter is_quarantined handles)

let serve_status t =
  let pol = t.cfg.supervision in
  let live = live_workers t in
  let t_now = now () in
  let exhausted =
    locked t.mu (fun () ->
        Array.fold_left
          (fun acc s ->
            if Atomic.get s.ws_dead && budget_exhausted pol s ~at:t_now then
              acc + 1
            else acc)
          0 t.slots)
  in
  let dead = t.cfg.workers - live in
  let quarantined = quarantined_handles t in
  let level =
    if live = 0 then Supervise.Critical
    else if dead > 0 || quarantined > 0 then Supervise.Degraded
    else Supervise.Healthy
  in
  {
    Supervise.ch_name = "serve";
    ch_level = level;
    ch_detail =
      (if level = Supervise.Healthy then
         Printf.sprintf "%d/%d workers live" live t.cfg.workers
       else
         Printf.sprintf
           "%d/%d workers live (%d crash-looping), %d quarantined handle(s)"
           live t.cfg.workers exhausted quarantined);
  }

(* {2 Admission (client side)} *)

(* Effective queue depth under memory-budget backpressure: full depth up
   to 50% budget fill, then linearly down to zero at 100% —
   depth * 2 * (1 - fill), clamped to [0, depth]. *)
let effective_depth cfg =
  let fill = Memgov.fill_fraction () in
  if fill <= 0.5 then cfg.queue_depth
  else if fill >= 1. then 0
  else
    let d =
      int_of_float (Float.round (float_of_int cfg.queue_depth *. 2. *. (1. -. fill)))
    in
    max 0 (min cfg.queue_depth d)

let reject tk ~handle ~reason ~ctx =
  Counters.serve_overloaded ();
  resolve tk
    (Error
       (Errors.Overloaded
          { site = "serve.admission"; what = reason; ctx = ("handle", handle) :: ctx }))

let submit ?deadline_ms t h bindings =
  let tk = new_ticket () in
  let deadline_ms =
    match deadline_ms with Some _ as d -> d | None -> t.cfg.default_deadline_ms
  in
  let rq_env =
    match target_of h with
    | Mono _ | Unbound -> None
    | Poly (p, _) -> ( try Some (Core.poly_env p bindings) with _ -> None)
  in
  let rq =
    {
      rq_handle = h;
      rq_bindings = bindings;
      rq_deadline =
        Option.map (fun ms -> now () +. (float_of_int ms /. 1000.)) deadline_ms;
      rq_deadline_ms = deadline_ms;
      rq_env;
      rq_ticket = tk;
    }
  in
  let verdict =
    locked t.mu (fun () ->
        t.s_submitted <- t.s_submitted + 1;
        h.h_submitted <- h.h_submitted + 1;
        Gc_observe.Labels.incr ~label:h.h_name "submitted";
        if not t.accepting then
          `Reject ("server is draining", [])
        else if Gc_faultinject.queue_full_check () then begin
          t.s_overloaded <- t.s_overloaded + 1;
          h.h_shed <- h.h_shed + 1;
          Gc_observe.Labels.incr ~label:h.h_name "shed";
          `Reject ("queue full", [ ("injected", "true") ])
        end
        else begin
          let eff = effective_depth t.cfg in
          let qlen = Queue.length t.queue in
          if qlen >= eff then begin
            t.s_overloaded <- t.s_overloaded + 1;
            h.h_shed <- h.h_shed + 1;
            Gc_observe.Labels.incr ~label:h.h_name "shed";
            `Reject
              ( "queue full",
                [
                  ("queue_len", string_of_int qlen);
                  ("depth", string_of_int t.cfg.queue_depth);
                  ("effective_depth", string_of_int eff);
                  ( "budget_fill",
                    Printf.sprintf "%.2f" (Memgov.fill_fraction ()) );
                ] )
          end
          else
            (* Weighted-fair quota: a model may queue up to its share of
               the effective depth (eff * weight / total weight, at least
               one slot). Past its share it may still borrow while the
               whole queue is under [quota_borrow * eff] — slack capacity
               belongs to whoever shows up — but once the queue is that
               full, over-share traffic is shed so a flooding tenant
               cannot starve the others' slots. *)
            let over_quota =
              t.total_weight > 0. && h.h_registered
              &&
              let share =
                float_of_int eff *. h.h_weight /. t.total_weight
              in
              let share = max 1 (int_of_float (floor share)) in
              h.h_queued >= share
              && float_of_int qlen
                 >= t.cfg.quota_borrow *. float_of_int eff
            in
            if over_quota then begin
              t.s_overloaded <- t.s_overloaded + 1;
              t.s_quota_shed <- t.s_quota_shed + 1;
              h.h_shed <- h.h_shed + 1;
              h.h_quota_shed <- h.h_quota_shed + 1;
              Counters.quota_shed ();
              Gc_observe.Labels.incr ~label:h.h_name "shed";
              Gc_observe.Labels.incr ~label:h.h_name "quota_shed";
              `Reject
                ( "model over admission quota",
                  [
                    ("model_queued", string_of_int h.h_queued);
                    ("queue_len", string_of_int qlen);
                    ("effective_depth", string_of_int eff);
                    ("weight", Printf.sprintf "%.2f" h.h_weight);
                  ] )
            end
            else
              (* Deadline feasibility: with a latency estimate in hand,
                 refuse work we can predict we cannot finish in time. *)
              let infeasible =
                match (deadline_ms, ewma_ms h) with
                | Some ms, Some ewma ->
                    let predicted =
                      ewma *. float_of_int (qlen + 1) *. t.cfg.safety_factor
                    in
                    if float_of_int ms < predicted then Some (ewma, predicted)
                    else None
                | _ -> None
              in
              match infeasible with
              | Some (ewma, predicted) ->
                  t.s_overloaded <- t.s_overloaded + 1;
                  h.h_shed <- h.h_shed + 1;
                  Gc_observe.Labels.incr ~label:h.h_name "shed";
                  `Reject
                    ( "deadline unmeetable",
                      [
                        ("ewma_ms", Printf.sprintf "%.2f" ewma);
                        ("predicted_ms", Printf.sprintf "%.2f" predicted);
                        ("queue_len", string_of_int qlen);
                      ] )
              | None ->
                  t.s_admitted <- t.s_admitted + 1;
                  h.h_admitted <- h.h_admitted + 1;
                  h.h_queued <- h.h_queued + 1;
                  Gc_observe.Labels.incr ~label:h.h_name "admitted";
                  Queue.push rq t.queue;
                  Condition.signal t.cv_work;
                  `Admitted
          end)
  in
  (match verdict with
  | `Admitted -> Counters.serve_admitted ()
  | `Reject (reason, ctx) ->
      let ctx =
        ctx
        @
        match deadline_ms with
        | Some ms -> [ ("deadline_ms", string_of_int ms) ]
        | None -> []
      in
      (* "draining" rejections are not pre-counted under the lock *)
      if reason = "server is draining" then
        locked t.mu (fun () ->
            t.s_overloaded <- t.s_overloaded + 1;
            h.h_shed <- h.h_shed + 1;
            Gc_observe.Labels.incr ~label:h.h_name "shed");
      reject tk ~handle:h.h_name ~reason ~ctx);
  tk

let call ?deadline_ms t h bindings = await (submit ?deadline_ms t h bindings)

(* {2 Construction} *)

let create ?config () =
  let cfg = match config with Some c -> c | None -> default_config () in
  if cfg.queue_depth < 1 then
    Errors.invalid_input
      ~ctx:[ ("queue_depth", string_of_int cfg.queue_depth) ]
      "Gc_serve.create: queue_depth must be >= 1";
  if cfg.workers < 1 then
    Errors.invalid_input
      ~ctx:[ ("workers", string_of_int cfg.workers) ]
      "Gc_serve.create: workers must be >= 1";
  let t =
    {
      cfg;
      mu = Mutex.create ();
      cv_work = Condition.create ();
      queue = Queue.create ();
      accepting = true;
      stopping = false;
      in_flight = 0;
      slots = [||];
      zombies = [];
      handles = [];
      sup_reg = None;
      next_handle = 0;
      s_submitted = 0;
      s_admitted = 0;
      s_completed = 0;
      s_ok = 0;
      s_overloaded = 0;
      s_shed_expired = 0;
      s_timeouts = 0;
      s_faults = 0;
      s_budget_rejects = 0;
      s_fallbacks = 0;
      s_coalesced_batches = 0;
      s_coalesced_tickets = 0;
      s_quota_shed = 0;
      total_weight = 0.;
    }
  in
  t.slots <-
    Array.init cfg.workers (fun i ->
        {
          ws_idx = i;
          ws_domain = None;
          ws_beat = Atomic.make (now ());
          ws_busy = Atomic.make false;
          ws_epoch = Atomic.make 0;
          ws_dead = Atomic.make false;
          ws_restarts = [];
          ws_backoff_ms = cfg.supervision.Supervise.backoff_base_ms;
          ws_next_respawn = 0.;
          ws_budget_logged = false;
          ws_stuck_logged = false;
        });
  Array.iter (fun slot -> spawn_into_slot t slot) t.slots;
  if cfg.supervision.Supervise.sup_enabled then
    t.sup_reg <-
      Some
        (Supervise.register ~name:"serve"
           ~tick:(fun () -> tick_serve t)
           ~status:(fun () -> serve_status t));
  t

let mk_handle ?name ?(weight = 1.) t target =
  if weight <= 0. then
    Errors.invalid_input
      ~ctx:[ ("weight", Printf.sprintf "%.3f" weight) ]
      "Gc_serve.register: weight must be positive";
  let name =
    match name with
    | Some n -> n
    | None ->
        locked t.mu (fun () ->
            t.next_handle <- t.next_handle + 1;
            Printf.sprintf "partition-%d" t.next_handle)
  in
  let h =
    {
      h_name = name;
      h_target = target;
      h_weight = weight;
      h_mu = Mutex.create ();
      h_ewma_ms = None;
      h_consec_fb = 0;
      h_state = Closed;
      h_opened_at = 0.;
      h_best_ms = None;
      h_lat_samples = 0;
      h_crash_stamps = [];
      h_quarantined = false;
      h_quarantined_at = 0.;
      h_probe = None;
      h_next_canary = 0.;
      h_queued = 0;
      h_submitted = 0;
      h_admitted = 0;
      h_ok = 0;
      h_shed = 0;
      h_quota_shed = 0;
      h_registered = true;
    }
  in
  locked t.mu (fun () ->
      t.handles <- h :: t.handles;
      t.total_weight <- t.total_weight +. weight);
  h

let register ?name ?weight t core = mk_handle ?name ?weight t (Mono core)

(* A poly handle coalesces along symbol [s] iff every output and every
   symbolic input carries [s] on axis 0 (and nowhere else), so
   concatenating inputs and splitting outputs along dim 0 is exactly a
   batched execution — and [s] must be bucketable (row-independent), the
   same property that makes zero-padding sound. *)
let coalesce_sym_of p =
  let g = Core.poly_graph p in
  let sym0 (lt : Core.Logical_tensor.t) =
    if Array.length lt.dims = 0 then None
    else match lt.dims.(0) with Dim.Sym s -> Some s | Dim.Fixed _ -> None
  in
  let only_on_axis0 s (lt : Core.Logical_tensor.t) =
    let ok = ref true in
    Array.iteri
      (fun i d -> if i > 0 && d = Dim.Sym s then ok := false)
      lt.dims;
    !ok
  in
  match List.find_map sym0 g.outputs with
  | None -> None
  | Some s ->
      let out_ok (lt : Core.Logical_tensor.t) =
        sym0 lt = Some s && only_on_axis0 s lt
      in
      let in_ok (lt : Core.Logical_tensor.t) =
        (not (Dim.has_sym lt.dims)) || (sym0 lt = Some s && only_on_axis0 s lt)
      in
      if
        List.for_all out_ok g.outputs
        && List.for_all in_ok g.inputs
        && List.mem s (Core.poly_bucket_syms p)
      then Some s
      else None

let register_poly ?name ?weight t p =
  mk_handle ?name ?weight t (Poly (p, coalesce_sym_of p))

let compile_and_register ?config ?name ?weight t g =
  Result.map (register ?name ?weight t) (Core.compile_checked ?config g)

(* {2 Rebinding (the registry's hot-swap / park / re-admit lever)} *)

(* Swap the artifact behind a live handle. Serving state tied to the old
   artifact resets (breaker, quarantine, crash stamps, canary probe); the
   latency EWMA survives — it tracks the model's cost profile, which a
   same-structure swap preserves, and one wrong estimate self-corrects in
   a few completions either way. Queued requests execute against the new
   target: the registry swaps like-for-like (same graph I/O), so bindings
   stay valid. *)
let set_target t h target =
  ignore t;
  locked h.h_mu (fun () ->
      h.h_target <- target;
      h.h_consec_fb <- 0;
      h.h_state <- Closed;
      h.h_crash_stamps <- [];
      h.h_quarantined <- false;
      h.h_probe <- None;
      h.h_next_canary <- 0.)

let rebind t h core = set_target t h (Mono core)
let rebind_poly t h p = set_target t h (Poly (p, coalesce_sym_of p))
let unbind t h = set_target t h Unbound

(* Drop the handle from the canary sweep and the fair-share total. The
   handle itself stays usable by anyone still holding it (submissions
   resolve typed), but it no longer counts as a tenant. Idempotent. *)
let unregister t h =
  locked t.mu (fun () ->
      if h.h_registered then begin
        h.h_registered <- false;
        t.total_weight <- Float.max 0. (t.total_weight -. h.h_weight);
        t.handles <- List.filter (fun h' -> not (h' == h)) t.handles
      end)

(* {2 Introspection} *)

type stats = {
  submitted : int;
  admitted : int;
  completed : int;
  ok : int;
  overloaded : int;
  shed_expired : int;
  timeouts : int;
  faults : int;
  budget_rejects : int;
  fallbacks : int;
  coalesced_batches : int;
  coalesced_tickets : int;
  quota_shed : int;
  queue_len : int;
  in_flight : int;
  effective_depth : int;
  draining : bool;
  workers_live : int;
  quarantined_handles : int;
}

let tier_health t = serve_status t

let stats t =
  let quarantined = quarantined_handles t in
  locked t.mu (fun () ->
      {
        submitted = t.s_submitted;
        admitted = t.s_admitted;
        completed = t.s_completed;
        ok = t.s_ok;
        overloaded = t.s_overloaded;
        shed_expired = t.s_shed_expired;
        timeouts = t.s_timeouts;
        faults = t.s_faults;
        budget_rejects = t.s_budget_rejects;
        fallbacks = t.s_fallbacks;
        coalesced_batches = t.s_coalesced_batches;
        coalesced_tickets = t.s_coalesced_tickets;
        quota_shed = t.s_quota_shed;
        queue_len = Queue.length t.queue;
        in_flight = t.in_flight;
        effective_depth = effective_depth t.cfg;
        draining = not t.accepting;
        workers_live = live_workers t;
        quarantined_handles = quarantined;
      })

(* Per-model view: admission tallies under the server lock, breaker /
   quarantine / EWMA under the handle lock (taken after, per the lock
   order). *)
type handle_stats = {
  hs_name : string;
  hs_weight : float;
  hs_submitted : int;
  hs_admitted : int;
  hs_ok : int;
  hs_shed : int;
  hs_quota_shed : int;
  hs_queued : int;
  hs_bound : bool;
  hs_quarantined : bool;
  hs_breaker : breaker_state;
  hs_ewma_ms : float option;
}

let handle_name h = h.h_name
let handle_weight h = h.h_weight

let handle_stats t h =
  let submitted, admitted, ok, shed, quota_shed, queued =
    locked t.mu (fun () ->
        (h.h_submitted, h.h_admitted, h.h_ok, h.h_shed, h.h_quota_shed,
         h.h_queued))
  in
  locked h.h_mu (fun () ->
      {
        hs_name = h.h_name;
        hs_weight = h.h_weight;
        hs_submitted = submitted;
        hs_admitted = admitted;
        hs_ok = ok;
        hs_shed = shed;
        hs_quota_shed = quota_shed;
        hs_queued = queued;
        hs_bound = h.h_target <> Unbound;
        hs_quarantined = h.h_quarantined;
        hs_breaker = h.h_state;
        hs_ewma_ms = h.h_ewma_ms;
      })

(* {2 Lifecycle} *)

let drain ?(deadline_ms = 1000) t =
  locked t.mu (fun () -> t.accepting <- false);
  Gc_faultinject.slow_drain_check ();
  let dl = now () +. (float_of_int deadline_ms /. 1000.) in
  (* No timed condvar wait in the stdlib: poll at 1 ms. Drain is a
     shutdown path, not a hot path. *)
  let rec wait () =
    let idle =
      locked t.mu (fun () -> Queue.is_empty t.queue && t.in_flight = 0)
    in
    if idle then ()
    else if now () > dl then begin
      (* shed whatever is still queued; in-flight requests keep their
         tickets and resolve under their own (watchdog-bounded) execution *)
      let stranded =
        locked t.mu (fun () ->
            let rqs = List.of_seq (Queue.to_seq t.queue) in
            Queue.clear t.queue;
            List.iter
              (fun rq ->
                rq.rq_handle.h_queued <- rq.rq_handle.h_queued - 1;
                rq.rq_handle.h_shed <- rq.rq_handle.h_shed + 1;
                Gc_observe.Labels.incr ~label:rq.rq_handle.h_name "shed")
              rqs;
            t.s_overloaded <- t.s_overloaded + List.length rqs;
            t.s_completed <- t.s_completed + List.length rqs;
            rqs)
      in
      List.iter
        (fun rq ->
          shed rq "shed at drain deadline"
            [ ("drain_deadline_ms", string_of_int deadline_ms) ])
        stranded
    end
    else begin
      Unix.sleepf 0.001;
      wait ()
    end
  in
  wait ()

let shutdown ?drain_deadline_ms t =
  (* unregister from supervision first: the monitor must not respawn or
     supersede workers we are about to join, and the retire-when-idle
     monitor cannot be left watching a dead server *)
  (match t.sup_reg with
  | Some reg ->
      t.sup_reg <- None;
      Supervise.unregister reg
  | None -> ());
  drain ?deadline_ms:drain_deadline_ms t;
  let ds =
    locked t.mu (fun () ->
        t.stopping <- true;
        Condition.broadcast t.cv_work;
        let ds =
          Array.fold_left
            (fun acc slot ->
              let acc =
                match slot.ws_domain with Some d -> d :: acc | None -> acc
              in
              slot.ws_domain <- None;
              acc)
            t.zombies t.slots
        in
        t.zombies <- [];
        ds)
  in
  List.iter Domain.join ds;
  (* graceful-shutdown post-mortem: persist the flight recorder when
     GC_EVENTS_DUMP is armed (no-op otherwise) *)
  ignore (Events.dump ())
