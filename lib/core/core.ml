module Dtype = Gc_tensor.Dtype
module Shape = Gc_tensor.Shape
module Layout = Gc_tensor.Layout
module Tensor = Gc_tensor.Tensor
module Reorder = Gc_tensor.Reorder
module Ref_ops = Gc_tensor.Ref_ops
module Machine = Gc_microkernel.Machine
module Graph = Gc_graph_ir.Graph
module Builder = Gc_graph_ir.Builder
module Op = Gc_graph_ir.Op
module Op_kind = Gc_graph_ir.Op_kind
module Logical_tensor = Gc_graph_ir.Logical_tensor
module Reference = Gc_graph_ir.Reference
module Pipeline = Gc_graph_passes.Pipeline
module Fused_op = Gc_lowering.Fused_op
module Params = Gc_lowering.Params
module Heuristic = Gc_lowering.Heuristic
module Ir = Gc_tensor_ir.Ir
module Printer = Gc_tensor_ir.Printer
module Tir_pipeline = Gc_tir_passes.Tir_pipeline
module Lower_graph = Gc_lowering.Lower_graph
module Engine = Gc_runtime.Engine
module Buffer = Gc_tensor.Buffer
module Observe = Gc_observe

let version = "1.0.0"

type config = {
  graph : Pipeline.config;
  tir : Tir_pipeline.config;
  pool : Gc_runtime.Parallel.t option;
}

let default_config ?machine () =
  { graph = Pipeline.default ?machine (); tir = Tir_pipeline.default; pool = None }

type t = {
  config : config;
  fused : Fused_op.graph;
  lowered : Lower_graph.t;
  module_opt : Ir.module_;
  stats : Tir_pipeline.stats;
  engine : Engine.t;
  clone_map : (int, Logical_tensor.t) Hashtbl.t;
      (** original logical tensor id → compiled clone *)
  mutable init_done : bool;
}

let compile ?config ?trace (g : Graph.t) =
  let config = match config with Some c -> c | None -> default_config () in
  (* compilation refines tensor metadata (layouts, constness) in place, so
     work on a private clone of the graph *)
  let g, clone_map = Graph.clone g in
  let fused = Pipeline.run ?trace config.graph g in
  let lowered =
    Gc_observe.Trace.time_into trace ~stage:"lowering" ~name:"lower_graph"
      ~before:(Gc_observe.Stats.of_fused fused)
      ~after:(fun (l : Lower_graph.t) -> Gc_observe.Stats.of_module l.module_)
      Lower_graph.lower fused
  in
  let module_opt, stats =
    Tir_pipeline.run ?trace ~config:config.tir lowered.module_
  in
  let engine =
    Gc_observe.Trace.time_into trace ~stage:"runtime" ~name:"engine_create"
      ~before:(Gc_observe.Stats.of_module module_opt)
      ~after:(fun _ -> Gc_observe.Stats.of_module module_opt)
      (Engine.create ?pool:config.pool)
      module_opt
  in
  { config; fused; lowered; module_opt; stats; engine; clone_map; init_done = false }

let fused_graph t = t.fused
let tir_module t = t.module_opt
let tir_stats t = t.stats
let config_of t = t.config
let invalidate_constants t = t.init_done <- false

(* User bindings reference the original graph's tensors; the compiled
   partition works on clones. Accept either. *)
let find_binding t bindings (lt : Logical_tensor.t) =
  List.find_map
    (fun ((l : Logical_tensor.t), v) ->
      if l.id = lt.id then Some v
      else
        match Hashtbl.find_opt t.clone_map l.id with
        | Some clone when clone.id = lt.id -> Some v
        | _ -> None)
    bindings

let check_binding (lt : Logical_tensor.t) (v : Tensor.t) =
  if not (Shape.equal lt.shape (Tensor.shape v)) then
    invalid_arg
      (Printf.sprintf "Core.execute: input %s has shape %s, expected %s"
         lt.name
         (Shape.to_string (Tensor.shape v))
         (Shape.to_string lt.shape));
  if not (Dtype.equal lt.dtype (Tensor.dtype v)) then
    invalid_arg
      (Printf.sprintf "Core.execute: input %s has dtype %s, expected %s"
         lt.name
         (Dtype.to_string (Tensor.dtype v))
         (Dtype.to_string lt.dtype))

(* The constant-preprocessing step ("init function"): evaluates the init
   subgraph once with the reference evaluator (the host-side analogue of
   the paper's generated init code) and uploads the results — and every
   compile-time constant — into the engine's global buffers. *)
let run_init t bindings =
  let init_env =
    match t.fused.init with
    | None -> []
    | Some init ->
        let const_bindings =
          List.filter_map
            (fun (lt : Logical_tensor.t) ->
              match find_binding t bindings lt with
              | Some v ->
                  check_binding lt v;
                  Some (lt, v)
              | None ->
                  if Logical_tensor.is_compile_const lt then None
                  else
                    invalid_arg
                      (Printf.sprintf
                         "Core.execute: missing binding for constant input %s"
                         lt.name))
            init.Graph.inputs
        in
        Reference.eval_tensors init const_bindings
  in
  List.iter
    (fun ((lt : Logical_tensor.t), (gt : Ir.tensor)) ->
      let value =
        match lt.property with
        | Compile_const v -> Some v
        | _ -> (
            match List.assoc_opt lt.id init_env with
            | Some v -> Some v
            | None -> find_binding t bindings lt)
      in
      match value with
      | Some v ->
          Buffer.blit ~src:(Tensor.buffer v) ~dst:(Engine.global_buffer t.engine gt)
      | None ->
          invalid_arg
            (Printf.sprintf "Core.execute: no value for runtime constant %s"
               lt.name))
    t.lowered.globals;
  t.init_done <- true

let execute t bindings =
  if not t.init_done then run_init t bindings;
  let outputs = ref [] in
  let bufs =
    List.map
      (fun ((lt : Logical_tensor.t), _) ->
        match find_binding t bindings lt with
        | Some v ->
            check_binding lt v;
            Tensor.buffer v
        | None ->
            if List.exists (Logical_tensor.equal lt) t.fused.g_inputs then
              invalid_arg
                (Printf.sprintf "Core.execute: missing binding for input %s"
                   lt.name);
            let out = Tensor.create ~layout:lt.layout lt.dtype lt.shape in
            outputs := (lt.id, out) :: !outputs;
            Tensor.buffer out)
      t.lowered.entry_params
  in
  Engine.run_entry t.engine (Array.of_list bufs);
  List.map
    (fun (lt : Logical_tensor.t) ->
      match List.assoc_opt lt.id !outputs with
      | Some v -> v
      | None -> (
          (* output aliases an input binding *)
          match find_binding t bindings lt with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Core.execute: output %s was not produced"
                   lt.name)))
    t.fused.g_outputs

let reference = Reference.run
