module Dtype = Gc_tensor.Dtype
module Shape = Gc_tensor.Shape
module Layout = Gc_tensor.Layout
module Tensor = Gc_tensor.Tensor
module Reorder = Gc_tensor.Reorder
module Ref_ops = Gc_tensor.Ref_ops
module Machine = Gc_microkernel.Machine
module Graph = Gc_graph_ir.Graph
module Builder = Gc_graph_ir.Builder
module Op = Gc_graph_ir.Op
module Op_kind = Gc_graph_ir.Op_kind
module Attrs = Gc_graph_ir.Attrs
module Logical_tensor = Gc_graph_ir.Logical_tensor
module Dim = Gc_graph_ir.Dim
module Reference = Gc_graph_ir.Reference
module Pipeline = Gc_graph_passes.Pipeline
module Fused_op = Gc_lowering.Fused_op
module Params = Gc_lowering.Params
module Heuristic = Gc_lowering.Heuristic
module Ir = Gc_tensor_ir.Ir
module Printer = Gc_tensor_ir.Printer
module Tir_pipeline = Gc_tir_passes.Tir_pipeline
module Buffer_schedule = Gc_tir_passes.Buffer_schedule
module Memgov = Gc_tensor.Memgov
module Lower_graph = Gc_lowering.Lower_graph
module Engine = Gc_runtime.Engine
module Guard = Gc_runtime.Guard
module Buffer = Gc_tensor.Buffer
module Observe = Gc_observe
module Errors = Errors

let version = "1.0.0"

type config = {
  graph : Pipeline.config;
  tir : Tir_pipeline.config;
  pool : Gc_runtime.Parallel.t option;
  fastpath : bool;
}

let default_config ?machine () =
  {
    graph = Pipeline.default ?machine ();
    tir = Tir_pipeline.default;
    pool = None;
    fastpath = true;
  }

(* The binding plan: [execute]'s binding resolution, compiled once. Each
   entry parameter of the Tensor IR entry function is a slot; the plan maps
   logical-tensor ids (clone and original) to slots, so a steady-state call
   resolves its bindings with one hash lookup per binding instead of
   scanning association lists per parameter. *)
type binding_plan = {
  bp_params : (Logical_tensor.t * Ir.tensor) array;
      (** the entry function's parameters, call order *)
  bp_input : bool array;  (** slot is a graph input — a binding is required *)
  bp_slots : (int, int list) Hashtbl.t;
      (** logical tensor id (clone or pre-clone original) → slots *)
  bp_out_slots : int array;
      (** slot of each graph output, in declaration order; [-1] when the
          output is not an entry parameter (resolved via bindings) *)
}

(* Per-domain pool of output tensors ([execute ~reuse_outputs:true]),
   stamped with the constant generation that produced it. *)
type out_pool = { op_gen : int; op_tensors : Tensor.t option array }

type t = {
  config : config;
  fused : Fused_op.graph;
  lowered : Lower_graph.t;
  module_opt : Ir.module_;
  stats : Tir_pipeline.stats;
  engine : Engine.t;
  clone_map : (int, Logical_tensor.t) Hashtbl.t;
      (** original logical tensor id → compiled clone *)
  plan : binding_plan;
  compiled_io : Logical_tensor.t array;
      (** the compiled clone's [inputs @ outputs], for re-keying cache hits *)
  source_graph : Graph.t;
      (** the caller's (unmutated) graph — the reference interpreter runs
          it directly when the watchdog falls back, so user bindings apply
          without translation *)
  init_gen : int Atomic.t;
      (** the [pool_gen] value the constant init is valid for; [-1] =
          never initialized. Comparing generations (rather than a boolean)
          closes the race where an init concurrent with
          [invalidate_constants] could republish stale constants. *)
  init_mutex : Mutex.t;
  pool_gen : int Atomic.t;
      (** bumped by [invalidate_constants]; stale output pools are dropped *)
  out_pool : out_pool option Domain.DLS.key;
  tune_scope : string option;
      (** tuning-DB scope the partition compiled under (the compile
          fingerprint); [None] when autotuning was off — the serving
          layer's online demotion needs it to drop the scope's entries *)
}

let build_plan (fused : Fused_op.graph) (lowered : Lower_graph.t)
    (clone_map : (int, Logical_tensor.t) Hashtbl.t) =
  let bp_params = Array.of_list lowered.entry_params in
  let n = Array.length bp_params in
  let bp_slots = Hashtbl.create (2 * (n + 1)) in
  let add id slot =
    let cur = Option.value ~default:[] (Hashtbl.find_opt bp_slots id) in
    Hashtbl.replace bp_slots id (cur @ [ slot ])
  in
  Array.iteri (fun i ((lt : Logical_tensor.t), _) -> add lt.id i) bp_params;
  (* user bindings may reference the original (pre-clone) tensors: alias
     their ids to the clone's slots *)
  Hashtbl.iter
    (fun src_id (clone : Logical_tensor.t) ->
      if src_id <> clone.id then
        match Hashtbl.find_opt bp_slots clone.id with
        | Some slots -> Hashtbl.replace bp_slots src_id slots
        | None -> ())
    clone_map;
  let bp_input =
    Array.map
      (fun ((lt : Logical_tensor.t), _) ->
        List.exists (Logical_tensor.equal lt) fused.g_inputs)
      bp_params
  in
  let bp_out_slots =
    Array.of_list
      (List.map
         (fun (lt : Logical_tensor.t) ->
           match Hashtbl.find_opt bp_slots lt.id with
           | Some (_ :: _ as slots) -> List.nth slots (List.length slots - 1)
           | _ -> -1)
         fused.g_outputs)
  in
  { bp_params; bp_input; bp_slots; bp_out_slots }

let attr_value_string : Attrs.value -> string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%h" f
  | Bool b -> string_of_bool b
  | Str s -> s
  | Ints l -> String.concat "x" (List.map string_of_int l)
  | Floats l -> String.concat "x" (List.map (Printf.sprintf "%h") l)

let fingerprint ?config (g : Graph.t) =
  let config = match config with Some c -> c | None -> default_config () in
  let b = Stdlib.Buffer.create 1024 in
  let add = Stdlib.Buffer.add_string b in
  (* canonical tensor numbering: first-mention order over inputs, the
     topologically sorted ops, then outputs — structurally identical graphs
     built at different times (different raw ids) fingerprint equal *)
  let canon = Hashtbl.create 64 in
  let idx (lt : Logical_tensor.t) =
    match Hashtbl.find_opt canon lt.id with
    | Some i -> i
    | None ->
        let i = Hashtbl.length canon in
        Hashtbl.add canon lt.id i;
        i
  in
  (* symbolic dims are canonicalized by first mention ($0, $1, ...) and the
     representative concrete size of a symbolic axis is deliberately NOT
     part of the key: graphs differing only there are one shape class and
     must share a compiled artifact *)
  let sym_canon = Hashtbl.create 8 in
  let sym_idx s =
    match Hashtbl.find_opt sym_canon s with
    | Some i -> i
    | None ->
        let i = Hashtbl.length sym_canon in
        Hashtbl.add sym_canon s i;
        i
  in
  let add_dims (lt : Logical_tensor.t) =
    if Dim.has_sym lt.dims then begin
      add "[";
      Array.iter
        (fun d ->
          (match d with
          | Dim.Fixed n -> add (string_of_int n)
          | Dim.Sym s -> add ("$" ^ string_of_int (sym_idx s)));
          add "x")
        lt.dims;
      add "]"
    end
    else add (Shape.to_string lt.shape)
  in
  let add_lt (lt : Logical_tensor.t) =
    add (string_of_int (idx lt));
    add ":";
    add (Dtype.to_string lt.dtype);
    add ":";
    add_dims lt;
    add ":";
    add (Layout.to_string lt.layout);
    (match lt.property with
    | Variable -> add ":v"
    | Runtime_const -> add ":rc"
    | Compile_const v ->
        (* compile-time constants are part of the generated code *)
        add ":cc[";
        Array.iter
          (fun x -> add (Printf.sprintf "%h," x))
          (Tensor.to_float_array v);
        add "]");
    add ";"
  in
  let ops = match Graph.topo_sort g with Ok g' -> g'.ops | Error _ -> g.ops in
  add "in:";
  List.iter add_lt g.inputs;
  add "ops:";
  List.iter
    (fun (op : Op.t) ->
      add (Op_kind.to_string op.kind);
      add "{";
      List.iter
        (fun (k, v) ->
          add k;
          add "=";
          add (attr_value_string v);
          add ",")
        (List.sort compare (Attrs.bindings op.attrs));
      add "}(";
      List.iter add_lt op.inputs;
      add ")->(";
      List.iter add_lt op.outputs;
      add ");")
    ops;
  add "out:";
  List.iter add_lt g.outputs;
  let graph_digest = Digest.string (Stdlib.Buffer.contents b) in
  (* the compiled artifact also depends on the pass configuration; the pool
     only carries execution resources and is deliberately excluded *)
  let config_digest =
    Digest.string
      (Marshal.to_string (config.graph, config.tir, config.fastpath) [])
  in
  Digest.to_hex graph_digest ^ Digest.to_hex config_digest

let compile ?config ?trace ?tune_scope (g : Graph.t) =
  let config = match config with Some c -> c | None -> default_config () in
  (* the tuning scope — the shape-class prefix of every tuning-DB key this
     compile's tunable ops produce — defaults to the compile fingerprint,
     computed only when autotuning is on (fingerprinting a graph that will
     not consult the DB would be pure overhead) *)
  let tune_scope =
    match tune_scope with
    | Some _ as s -> s
    | None ->
        if Gc_tuning.Autotune.enabled () then Some (fingerprint ~config g)
        else None
  in
  (* compilation refines tensor metadata (layouts, constness) in place, so
     work on a private clone of the graph *)
  let source_graph = g in
  let g, clone_map = Graph.clone g in
  let compiled_io = Array.of_list (g.inputs @ g.outputs) in
  let fused = Pipeline.run ?trace ?tune_scope config.graph g in
  let lowered =
    Gc_observe.Trace.time_into trace ~stage:"lowering" ~name:"lower_graph"
      ~before:(Gc_observe.Stats.of_fused fused)
      ~after:(fun (l : Lower_graph.t) -> Gc_observe.Stats.of_module l.module_)
      Lower_graph.lower fused
  in
  let module_opt, stats =
    Tir_pipeline.run ?trace ~config:config.tir lowered.module_
  in
  let engine =
    Gc_observe.Trace.time_into trace ~stage:"runtime" ~name:"engine_create"
      ~before:(Gc_observe.Stats.of_module module_opt)
      ~after:(fun _ -> Gc_observe.Stats.of_module module_opt)
      (Engine.create ?pool:config.pool ~fastpath:config.fastpath)
      module_opt
  in
  let plan = build_plan fused lowered clone_map in
  {
    config;
    fused;
    lowered;
    module_opt;
    stats;
    engine;
    clone_map;
    plan;
    compiled_io;
    source_graph;
    init_gen = Atomic.make (-1);
    init_mutex = Mutex.create ();
    pool_gen = Atomic.make 0;
    out_pool = Domain.DLS.new_key (fun () -> None);
    tune_scope;
  }

let fused_graph t = t.fused
let tir_module t = t.module_opt
let tir_stats t = t.stats
let config_of t = t.config
let tune_scope t = t.tune_scope

let invalidate_constants t =
  Mutex.lock t.init_mutex;
  (* bumping the generation is the single linearization point: it both
     forces the next execute to re-run the init ([init_gen] no longer
     matches) and lazily discards the generation-stamped per-domain output
     pools; the engine's global buffers are repopulated in place by the
     next init run. Taking [init_mutex] orders the bump against any
     in-flight init, so a concurrent execute either observes the new
     generation (and re-inits) or publishes its init stamped with the old
     one — which the next execute then redoes. *)
  Atomic.incr t.pool_gen;
  Mutex.unlock t.init_mutex

(* User bindings reference the original graph's tensors; the compiled
   partition works on clones. Accept either. *)
let find_binding t bindings (lt : Logical_tensor.t) =
  List.find_map
    (fun ((l : Logical_tensor.t), v) ->
      if l.id = lt.id then Some v
      else
        match Hashtbl.find_opt t.clone_map l.id with
        | Some clone when clone.id = lt.id -> Some v
        | _ -> None)
    bindings

(* Boundary validation failures are typed Invalid_input and counted —
   both for [run_init]'s constant bindings and [execute]'s per-call
   bindings. *)
let reject what ctx =
  Gc_observe.Counters.validation_reject ();
  Gc_errors.invalid_input ~ctx what

let check_binding (lt : Logical_tensor.t) (v : Tensor.t) =
  if not (Shape.equal lt.shape (Tensor.shape v)) then
    reject
      (Printf.sprintf "Core.execute: input %s has shape %s, expected %s"
         lt.name
         (Shape.to_string (Tensor.shape v))
         (Shape.to_string lt.shape))
      [
        ("input", lt.name);
        ("shape", Shape.to_string (Tensor.shape v));
        ("expected_shape", Shape.to_string lt.shape);
      ];
  if not (Dtype.equal lt.dtype (Tensor.dtype v)) then
    reject
      (Printf.sprintf "Core.execute: input %s has dtype %s, expected %s"
         lt.name
         (Dtype.to_string (Tensor.dtype v))
         (Dtype.to_string lt.dtype))
      [
        ("input", lt.name);
        ("dtype", Dtype.to_string (Tensor.dtype v));
        ("expected_dtype", Dtype.to_string lt.dtype);
      ];
  if not (Layout.equal lt.layout (Tensor.layout v)) then
    reject
      (Printf.sprintf "Core.execute: input %s has layout %s, expected %s"
         lt.name
         (Layout.to_string (Tensor.layout v))
         (Layout.to_string lt.layout))
      [
        ("input", lt.name);
        ("layout", Layout.to_string (Tensor.layout v));
        ("expected_layout", Layout.to_string lt.layout);
      ]

(* The constant-preprocessing step ("init function"): evaluates the init
   subgraph once with the reference evaluator (the host-side analogue of
   the paper's generated init code) and uploads the results — and every
   compile-time constant — into the engine's global buffers. *)
let run_init t bindings =
  let init_env =
    match t.fused.init with
    | None -> []
    | Some init ->
        let const_bindings =
          List.filter_map
            (fun (lt : Logical_tensor.t) ->
              match find_binding t bindings lt with
              | Some v ->
                  check_binding lt v;
                  Some (lt, v)
              | None ->
                  if Logical_tensor.is_compile_const lt then None
                  else
                    reject
                      (Printf.sprintf
                         "Core.execute: missing binding for constant input %s"
                         lt.name)
                      [ ("input", lt.name) ])
            init.Graph.inputs
        in
        Reference.eval_tensors init const_bindings
  in
  List.iter
    (fun ((lt : Logical_tensor.t), (gt : Ir.tensor)) ->
      let value =
        match lt.property with
        | Compile_const v -> Some v
        | _ -> (
            match List.assoc_opt lt.id init_env with
            | Some v -> Some v
            | None -> find_binding t bindings lt)
      in
      match value with
      | Some v ->
          Buffer.blit ~src:(Tensor.buffer v) ~dst:(Engine.global_buffer t.engine gt)
      | None ->
          reject
            (Printf.sprintf "Core.execute: no value for runtime constant %s"
               lt.name)
            [ ("input", lt.name) ])
    t.lowered.globals

(* Idempotent, mutex-guarded (double-checked) constant initialization:
   concurrent first executes run the init exactly once; the winner
   publishes [init_gen] only after the global buffers are populated. The
   published value is the generation re-read UNDER the mutex, so an
   [invalidate_constants] (which also takes the mutex to bump the
   generation) can never be overwritten by a racing init stamped with the
   generation it just retired. *)
let ensure_init t bindings =
  if Atomic.get t.init_gen <> Atomic.get t.pool_gen then begin
    Mutex.lock t.init_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.init_mutex)
      (fun () ->
        let gen = Atomic.get t.pool_gen in
        if Atomic.get t.init_gen <> gen then begin
          run_init t bindings;
          Atomic.set t.init_gen gen
        end)
  end

let output_tensor t ~reuse_outputs slot (lt : Logical_tensor.t) =
  if not reuse_outputs then
    Tensor.create ~name:lt.name ~layout:lt.layout lt.dtype lt.shape
  else begin
    let gen = Atomic.get t.pool_gen in
    let pool =
      match Domain.DLS.get t.out_pool with
      | Some p when p.op_gen = gen -> p
      | _ ->
          let p =
            {
              op_gen = gen;
              op_tensors = Array.make (Array.length t.plan.bp_params) None;
            }
          in
          Domain.DLS.set t.out_pool (Some p);
          p
    in
    match pool.op_tensors.(slot) with
    | Some v -> v
    | None ->
        let v = Tensor.create ~name:lt.name ~layout:lt.layout lt.dtype lt.shape in
        pool.op_tensors.(slot) <- Some v;
        v
  end

(* Resolve and validate the per-call bindings against the plan. Runs
   BEFORE any engine state is touched (constant init, arenas, execution
   environments): a malformed call is rejected while the partition is
   still untouched, so rejection is cheap and leaves no half-initialized
   state behind. *)
let resolve_bindings t bindings =
  let plan = t.plan in
  let n = Array.length plan.bp_params in
  let vals : Tensor.t option array = Array.make n None in
  List.iter
    (fun ((l : Logical_tensor.t), v) ->
      match Hashtbl.find_opt plan.bp_slots l.id with
      | Some slots ->
          List.iter
            (fun s ->
              let lt, _ = plan.bp_params.(s) in
              check_binding lt v;
              vals.(s) <- Some v)
            slots
      | None -> () (* e.g. constant weights: consumed by the init step *))
    bindings;
  Array.iteri
    (fun i slot_val ->
      if slot_val = None && plan.bp_input.(i) then begin
        let lt, _ = plan.bp_params.(i) in
        reject
          (Printf.sprintf "Core.execute: missing binding for input %s" lt.name)
          [ ("input", lt.name) ]
      end)
    vals;
  vals

let execute ?(reuse_outputs = false) t bindings =
  let plan = t.plan in
  let vals = resolve_bindings t bindings in
  ensure_init t bindings;
  let bufs =
    Array.mapi
      (fun i slot_val ->
        match slot_val with
        | Some v -> Tensor.buffer v
        | None ->
            let lt, _ = plan.bp_params.(i) in
            let out = output_tensor t ~reuse_outputs i lt in
            vals.(i) <- Some out;
            Tensor.buffer out)
      vals
  in
  Engine.run_entry t.engine bufs;
  List.mapi
    (fun i (lt : Logical_tensor.t) ->
      let slot = plan.bp_out_slots.(i) in
      if slot >= 0 then
        match vals.(slot) with Some v -> v | None -> assert false
      else
        match find_binding t bindings lt with
        | Some v -> v
        | None ->
            reject
              (Printf.sprintf "Core.execute: output %s was not produced"
                 lt.name)
              [ ("output", lt.name) ])
    t.fused.g_outputs

let reference = Reference.run

(* {2 Checked entry points: watchdog, retry, fallback} *)

type exec_options = {
  timeout_ms : int option;
  retries : int;
  fallback : bool;
  sanitize_outputs : bool;
}

let default_exec_options () =
  {
    timeout_ms = Guard.env_timeout_ms ();
    retries = 1;
    fallback = true;
    sanitize_outputs = false;
  }

(* Opt-in output sanitizer: a kernel that silently produced NaN/Inf into a
   float output is promoted to a typed Runtime_fault, which the retry /
   fallback ladder can then act on. Integer outputs cannot encode
   non-finite values and are skipped. *)
let sanitize_outputs outs =
  List.iter
    (fun v ->
      match Tensor.dtype v with
      | Dtype.F32 | Dtype.Bf16 ->
          let b = Tensor.buffer v in
          let n = Buffer.length b in
          let bad = ref (-1) in
          (try
             for i = 0 to n - 1 do
               if not (Float.is_finite (Buffer.get b i)) then begin
                 bad := i;
                 raise Exit
               end
             done
           with Exit -> ());
          if !bad >= 0 then begin
            Gc_observe.Counters.sanitizer_hit ();
            Gc_errors.runtime_fault ~site:"core.sanitizer"
              ~ctx:
                [
                  ("index", string_of_int !bad);
                  ("value", Printf.sprintf "%h" (Buffer.get b !bad));
                ]
              "Core.execute: non-finite value in output"
          end
      | _ -> ())
    outs

(* Fallback path: run the caller's original graph through the reference
   interpreter. User bindings apply directly (the source graph is theirs);
   compile-time constants that the engine baked into generated code are
   reconstituted from the logical tensors' properties. *)
let run_fallback t bindings =
  let bindings =
    List.fold_left
      (fun acc (lt : Logical_tensor.t) ->
        let bound =
          List.exists (fun ((l : Logical_tensor.t), _) -> l.id = lt.id) acc
        in
        if bound then acc
        else
          match lt.property with
          | Compile_const v -> (lt, v) :: acc
          | _ -> acc)
      bindings t.source_graph.Graph.inputs
  in
  Gc_observe.Counters.fallback_interp ();
  Reference.run t.source_graph bindings

type exec_report = { used_fallback : bool; retries_used : int }

let execute_checked_report ?options ?deadline_ms ?(reuse_outputs = false) t
    bindings =
  let options =
    match options with Some o -> o | None -> default_exec_options ()
  in
  (* A per-call deadline overrides whatever the options (and hence
     GC_EXEC_TIMEOUT_MS) said — this is the serving layer's lever for
     propagating each request's remaining deadline into the watchdog. *)
  let options =
    match deadline_ms with
    | Some ms -> { options with timeout_ms = Some ms }
    | None -> options
  in
  let attempt () =
    let run () =
      let outs = execute ~reuse_outputs t bindings in
      if options.sanitize_outputs then sanitize_outputs outs;
      outs
    in
    match options.timeout_ms with
    | Some ms -> Guard.with_deadline ~timeout_ms:ms ~site:"core.execute" run
    | None -> run ()
  in
  let rec go tries =
    match attempt () with
    | outs -> Ok (outs, { used_fallback = false; retries_used = tries })
    | exception Gc_errors.Error (Gc_errors.Runtime_fault _ as e) ->
        (* a contained execution fault: the partition is still
           serviceable, so retry (transient faults: a poisoned kernel, a
           worker hiccup), then degrade to the reference interpreter *)
        if tries < options.retries then begin
          Gc_observe.Counters.exec_retry ();
          go (tries + 1)
        end
        else if options.fallback then begin
          match run_fallback t bindings with
          | outs ->
              if options.sanitize_outputs then sanitize_outputs outs;
              Ok (outs, { used_fallback = true; retries_used = tries })
          | exception _ -> Error e
        end
        else Error e
    | exception Gc_errors.Error e ->
        (* Resource_exhausted is counted here: its raise sites live below
           the observability layer (Buffer/faultinject), so the boundary
           does the counting *)
        (match e with
        | Gc_errors.Resource_exhausted _ ->
            Gc_observe.Counters.resource_exhausted ()
        | _ -> ());
        Error e
    | exception e ->
        let backtrace = Printexc.get_backtrace () in
        Error (Gc_errors.classify ~site:"core.execute" ~backtrace e)
  in
  go 0

let execute_checked ?options ?deadline_ms ?reuse_outputs t bindings =
  Result.map fst
    (execute_checked_report ?options ?deadline_ms ?reuse_outputs t bindings)

(* Run the reference-interpreter degraded path directly (no compiled
   attempt). The serving layer's circuit breaker uses this to short-circuit
   partitions whose compiled path keeps faulting. *)
let execute_fallback ?deadline_ms t bindings =
  let run () = run_fallback t bindings in
  match
    match deadline_ms with
    | Some ms -> Guard.with_deadline ~timeout_ms:ms ~site:"core.fallback" run
    | None -> run ()
  with
  | outs -> Ok outs
  | exception Gc_errors.Error e ->
      (match e with
      | Gc_errors.Resource_exhausted _ ->
          Gc_observe.Counters.resource_exhausted ()
      | _ -> ());
      Error e
  | exception e ->
      let backtrace = Printexc.get_backtrace () in
      Error (Gc_errors.classify ~site:"core.fallback" ~backtrace e)

let compile_checked ?config ?trace g =
  match compile ?config ?trace g with
  | t -> Ok t
  | exception Gc_errors.Error e -> Error e
  | exception e ->
      (* anything foreign escaping the compilation pipeline is by
         definition a compile error, whatever its original form *)
      Error
        (Gc_errors.Compile_error
           { stage = "pipeline"; what = Printexc.to_string e; ctx = [] })

(* {2 Compilation cache} *)

(* Estimated resident bytes of a compiled partition: packed runtime-
   constant globals plus one arena instance per function's alloc plan.
   An estimate — the live [Buffer] charges in [Memgov] track exact
   storage — but stable and cheap (computed once at insert), which is
   what budget-aware cache residency needs. *)
let estimated_bytes (t : t) =
  let globals =
    List.fold_left
      (fun acc g -> acc + Ir.tensor_bytes g)
      0 t.module_opt.Ir.globals
  in
  let arenas =
    List.fold_left
      (fun acc (f : Ir.func) ->
        match Buffer_schedule.plan_bytes (Buffer_schedule.alloc_plan f) with
        | b -> acc + b
        | exception _ -> acc)
      0 t.module_opt.Ir.funcs
  in
  globals + arenas

module Compile_cache = struct
  type stats = {
    hits : int;
    misses : int;
    entries : int;
    evictions : int;
    resident_bytes : int;
    pinned : int;
  }

  (* Residency record: the compiled partition plus the byte/pin state the
     eviction policy runs on. [ce_charged] remembers whether the insert
     recorded a Memgov charge, so release is exactly symmetric whatever
     the budget was doing at insert time. *)
  type entry = {
    ce_t : t;
    ce_bytes : int;
    ce_charged : bool;
    mutable ce_pins : int;
  }

  let lock = Mutex.create ()
  let table : (string, entry) Hashtbl.t = Hashtbl.create 16
  let n_hits = ref 0
  let n_misses = ref 0
  let n_evictions = ref 0

  (* LRU bookkeeping: a monotonically increasing use stamp per key; the
     eviction scan is O(entries), fine at the cache sizes a bound makes
     sense for (tens to hundreds of compiled modules). *)
  let stamps : (string, int) Hashtbl.t = Hashtbl.create 16
  let tick = ref 0
  let bound : int option ref = ref None

  let env_max_bytes () =
    match Sys.getenv_opt "GC_CACHE_MAX_BYTES" with
    | None | Some "" -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Some n
        | _ -> None)

  let byte_bound : int option ref = ref (env_max_bytes ())

  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let touch_locked key =
    incr tick;
    Hashtbl.replace stamps key !tick

  let resident_bytes_locked () =
    Hashtbl.fold (fun _ e acc -> acc + e.ce_bytes) table 0

  (* Drop [key] now: release its Memgov charge, count the freed bytes. *)
  let drop_locked key e =
    Hashtbl.remove table key;
    Hashtbl.remove stamps key;
    if e.ce_charged then Memgov.release e.ce_bytes;
    Gc_observe.Counters.cache_bytes_evicted e.ce_bytes;
    incr n_evictions

  (* Least-recently-used entry among the evictable (unpinned) ones. *)
  let lru_unpinned_locked () =
    Hashtbl.fold
      (fun key e acc ->
        if e.ce_pins > 0 then acc
        else
          let stamp = Option.value ~default:0 (Hashtbl.find_opt stamps key) in
          match acc with
          | Some (_, _, best) when best <= stamp -> acc
          | _ -> Some (key, e, stamp))
      table None

  (* Enforce both bounds (entry count, resident bytes), LRU-first,
     skipping pinned entries. When everything left is pinned the cache
     stays over-bound — pins are hard residency guarantees. *)
  let evict_locked () =
    let continue = ref true in
    (match !bound with
    | None -> ()
    | Some m ->
        while !continue && Hashtbl.length table > max m 0 do
          match lru_unpinned_locked () with
          | Some (key, e, _) -> drop_locked key e
          | None -> continue := false
        done);
    continue := true;
    match !byte_bound with
    | None -> ()
    | Some mb ->
        while !continue && resident_bytes_locked () > max mb 0 do
          match lru_unpinned_locked () with
          | Some (key, e, _) -> drop_locked key e
          | None -> continue := false
        done

  (* Charge a fresh insert's estimated bytes against the memory budget.
     This layer never originates [Resource_exhausted]: on refusal it
     evicts LRU unpinned entries to make headroom and retries; when the
     budget still refuses with nothing left to evict, the entry is
     admitted uncharged and the overcommit counted — serving traffic must
     not fail because residency accounting is full. *)
  let charge_insert_locked key bytes =
    let name = "compile_cache:" ^ String.sub key 0 (min 12 (String.length key)) in
    let rec go () =
      match Memgov.charge ~name bytes with
      | charged -> charged
      | exception Gc_errors.Error (Gc_errors.Resource_exhausted _) -> (
          match lru_unpinned_locked () with
          | Some (k, e, _) ->
              drop_locked k e;
              go ()
          | None ->
              Gc_observe.Counters.cache_overcommit ();
              false)
    in
    go ()

  let set_max_entries m =
    locked (fun () ->
        bound := m;
        evict_locked ())

  let max_entries () = locked (fun () -> !bound)

  let set_max_bytes m =
    locked (fun () ->
        byte_bound := m;
        evict_locked ())

  let max_bytes () = locked (fun () -> !byte_bound)
  let size () = locked (fun () -> Hashtbl.length table)

  let keys () =
    locked (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) table [])

  let mem key = locked (fun () -> Hashtbl.mem table key)

  let entry_bytes key =
    locked (fun () ->
        Option.map (fun e -> e.ce_bytes) (Hashtbl.find_opt table key))

  let pin key =
    locked (fun () ->
        match Hashtbl.find_opt table key with
        | Some e ->
            e.ce_pins <- e.ce_pins + 1;
            true
        | None -> false)

  let unpin key =
    locked (fun () ->
        match Hashtbl.find_opt table key with
        | Some e when e.ce_pins > 0 -> e.ce_pins <- e.ce_pins - 1
        | _ -> ())

  let pins key =
    locked (fun () ->
        match Hashtbl.find_opt table key with
        | Some e -> e.ce_pins
        | None -> 0)

  let evict_key key =
    locked (fun () ->
        match Hashtbl.find_opt table key with
        | Some e when e.ce_pins = 0 ->
            drop_locked key e;
            true
        | _ -> false)

  let stats () =
    locked (fun () ->
        {
          hits = !n_hits;
          misses = !n_misses;
          entries = Hashtbl.length table;
          evictions = !n_evictions;
          resident_bytes = resident_bytes_locked ();
          pinned =
            Hashtbl.fold
              (fun _ e acc -> if e.ce_pins > 0 then acc + 1 else acc)
              table 0;
        })

  let clear () =
    locked (fun () ->
        Hashtbl.iter
          (fun _ e -> if e.ce_charged then Memgov.release e.ce_bytes)
          table;
        Hashtbl.reset table;
        Hashtbl.reset stamps;
        n_hits := 0;
        n_misses := 0;
        n_evictions := 0)
end

(* A cache hit is re-keyed to the requesting graph's logical tensors: the
   engine, Tensor IR, init state (constants) and output pools stay shared
   with the cached partition; only the id → slot maps are extended so the
   new graph's tensors resolve positionally (the fingerprint guarantees
   matching shapes/dtypes per position). *)
let rekey (base : t) (g : Graph.t) =
  let io = g.inputs @ g.outputs in
  if
    List.for_all
      (fun (lt : Logical_tensor.t) -> Hashtbl.mem base.clone_map lt.id)
      io
  then base
  else begin
    let clone_map = Hashtbl.copy base.clone_map in
    let bp_slots = Hashtbl.copy base.plan.bp_slots in
    List.iteri
      (fun i (lt : Logical_tensor.t) ->
        if i < Array.length base.compiled_io then begin
          let target = base.compiled_io.(i) in
          Hashtbl.replace clone_map lt.id target;
          match Hashtbl.find_opt bp_slots target.id with
          | Some slots -> Hashtbl.replace bp_slots lt.id slots
          | None -> ()
        end)
      io;
    { base with clone_map; plan = { base.plan with bp_slots }; source_graph = g }
  end

let compile_cached ?config ?trace ?tune_scope ?(pin = false) (g : Graph.t) =
  let config = match config with Some c -> c | None -> default_config () in
  let key = fingerprint ~config g in
  (* the cache key doubles as the tuning scope, except for bucketed poly
     instances, whose caller passes the symbolic source fingerprint so
     every bucket of one shape class shares tuned entries *)
  let tune_scope = Option.value tune_scope ~default:key in
  let cached =
    Compile_cache.locked (fun () ->
        match Hashtbl.find_opt Compile_cache.table key with
        | Some e ->
            incr Compile_cache.n_hits;
            Compile_cache.touch_locked key;
            if pin then e.Compile_cache.ce_pins <- e.Compile_cache.ce_pins + 1;
            Some e.Compile_cache.ce_t
        | None ->
            incr Compile_cache.n_misses;
            None)
  in
  match cached with
  | Some base -> rekey base g
  | None -> (
      (* compile outside the lock: concurrent misses race, first insert
         wins and the losers re-key against the winner *)
      let t = compile ~config ?trace ~tune_scope g in
      let bytes = estimated_bytes t in
      Compile_cache.locked (fun () ->
          match Hashtbl.find_opt Compile_cache.table key with
          | Some winner ->
              Compile_cache.touch_locked key;
              if pin then
                winner.Compile_cache.ce_pins <-
                  winner.Compile_cache.ce_pins + 1;
              winner.Compile_cache.ce_t
          | None ->
              let charged = Compile_cache.charge_insert_locked key bytes in
              Hashtbl.add Compile_cache.table key
                {
                  Compile_cache.ce_t = t;
                  ce_bytes = bytes;
                  ce_charged = charged;
                  ce_pins = (if pin then 1 else 0);
                };
              Compile_cache.touch_locked key;
              Compile_cache.evict_locked ();
              t)
      |> fun winner -> if winner == t then t else rekey winner g)

(* {2 Shape-polymorphic compilation: bucketed specialization} *)

module Buckets = struct
  type t = int list (* strictly increasing, all positive *)

  let default_sizes = [ 1; 2; 4; 8; 16; 32 ]

  let validate sizes =
    match sizes with
    | [] -> Gc_errors.invalid_input "Buckets: empty bucket list"
    | _ ->
        List.iter
          (fun b ->
            if b <= 0 then
              Gc_errors.invalid_input
                ~ctx:[ ("bucket", string_of_int b) ]
                "Buckets: sizes must be positive")
          sizes;
        let sorted = List.sort_uniq Int.compare sizes in
        sorted

  let of_list sizes = validate sizes

  (* GC_BUCKETS="1,2,4,8,16,32" overrides the default ladder. *)
  let of_env () =
    match Sys.getenv_opt "GC_BUCKETS" with
    | None | Some "" -> default_sizes
    | Some s ->
        let parts = String.split_on_char ',' (String.trim s) in
        validate
          (List.filter_map
             (fun p ->
               match int_of_string_opt (String.trim p) with
               | Some v -> Some v
               | None ->
                   Gc_errors.invalid_input
                     ~ctx:[ ("GC_BUCKETS", s) ]
                     "Buckets.of_env: not a comma-separated int list")
             parts)

  let max_size t = List.fold_left max 1 t

  (* Smallest bucket >= n; beyond the ladder, round up to the next
     multiple of the largest bucket so oversized requests still land on a
     small number of shape classes. *)
  let pick t n =
    if n <= 0 then
      Gc_errors.invalid_input
        ~ctx:[ ("n", string_of_int n) ]
        "Buckets.pick: size must be positive";
    match List.find_opt (fun b -> b >= n) t with
    | Some b -> b
    | None ->
        let m = max_size t in
        (n + m - 1) / m * m
end

(* A polymorphic compilation: one symbolic source graph, one compiled
   instance per bucketed symbol environment. Instances go through
   [compile_cached], so two poly handles over the same shape class share
   engines via the global cache. *)

type poly_instance = {
  pi_core : t;
  pi_subst : (int, Logical_tensor.t) Hashtbl.t;
      (* symbolic graph tensor id -> concrete substituted tensor *)
  pi_graph : Graph.t; (* the substituted concrete graph *)
}

type poly = {
  p_graph : Graph.t;
  p_config : config;
  p_buckets : Buckets.t;
  p_bucket_syms : string list;
  p_syms : string list;
  p_lock : Mutex.t;
  p_instances : (string, poly_instance) Hashtbl.t;
  p_tune_scope : string;
      (* fingerprint of the symbolic source graph: the tuning scope every
         bucketed instance compiles under, so one shape class shares tuned
         entries across buckets *)
}

let compile_poly ?config ?buckets ?bucket_syms (g : Graph.t) =
  let config = match config with Some c -> c | None -> default_config () in
  let buckets =
    match buckets with Some b -> Buckets.of_list b | None -> Buckets.of_env ()
  in
  let syms = Graph.syms g in
  let bucket_syms = match bucket_syms with Some l -> l | None -> syms in
  List.iter
    (fun s ->
      if not (List.mem s syms) then
        Gc_errors.invalid_input
          ~ctx:[ ("sym", s) ]
          "Core.compile_poly: bucket_syms names an unknown symbol")
    bucket_syms;
  {
    p_graph = g;
    p_config = config;
    p_buckets = buckets;
    p_bucket_syms = bucket_syms;
    p_syms = syms;
    p_lock = Mutex.create ();
    p_instances = Hashtbl.create 8;
    p_tune_scope = fingerprint ~config g;
  }

let poly_graph p = p.p_graph
let poly_syms p = p.p_syms
let poly_buckets p = p.p_buckets
let poly_bucket_syms p = p.p_bucket_syms
let poly_tune_scope p = p.p_tune_scope

(* Resolve each symbol's concrete size from the bound input tensors,
   rejecting inconsistent bindings (same symbol, two sizes). *)
let poly_env p bindings =
  let env : (string * int) list ref = ref [] in
  List.iter
    (fun (lt : Logical_tensor.t) ->
      if Dim.has_sym lt.dims then begin
        match
          List.find_map
            (fun ((l : Logical_tensor.t), v) ->
              if l.id = lt.id then Some v else None)
            bindings
        with
        | None ->
            reject
              (Printf.sprintf
                 "Core.execute_poly: symbolic input %s is not bound" lt.name)
              [ ("input", lt.name) ]
        | Some v ->
            let shape = Tensor.shape v in
            if Shape.rank shape <> Array.length lt.dims then
              reject
                (Printf.sprintf
                   "Core.execute_poly: input %s has rank %d, expected %d"
                   lt.name (Shape.rank shape) (Array.length lt.dims))
                [ ("input", lt.name) ];
            Array.iteri
              (fun i d ->
                match d with
                | Dim.Fixed n ->
                    let actual = Shape.dim shape i in
                    if actual <> n then
                      reject
                        (Printf.sprintf
                           "Core.execute_poly: input %s has size %d on fixed \
                            axis %d, expected %d"
                           lt.name actual i n)
                        [ ("input", lt.name) ]
                | Dim.Sym s -> (
                    let actual = Shape.dim shape i in
                    match List.assoc_opt s !env with
                    | None -> env := (s, actual) :: !env
                    | Some prev when prev = actual -> ()
                    | Some prev ->
                        reject
                          (Printf.sprintf
                             "Core.execute_poly: symbol %s bound to both %d \
                              and %d"
                             s prev actual)
                          [
                            ("sym", s);
                            ("a", string_of_int prev);
                            ("b", string_of_int actual);
                          ]))
              lt.dims
      end)
    p.p_graph.Graph.inputs;
  List.rev !env

let poly_bucket_env p env =
  List.map
    (fun (s, v) ->
      if List.mem s p.p_bucket_syms then (s, Buckets.pick p.p_buckets v)
      else (s, v))
    env

let env_key env =
  String.concat ","
    (List.map
       (fun (s, v) -> s ^ "=" ^ string_of_int v)
       (List.sort compare env))

(* Find or build the compiled instance for a bucketed environment. Lookup
   under the poly lock, compile outside it (mirroring [compile_cached]):
   concurrent misses race and the first insert wins. *)
let poly_instance p env_bucket =
  let key = env_key env_bucket in
  let cached =
    Mutex.lock p.p_lock;
    let r = Hashtbl.find_opt p.p_instances key in
    Mutex.unlock p.p_lock;
    r
  in
  match cached with
  | Some inst ->
      Gc_observe.Counters.bucket_cache_hit ();
      inst
  | None -> (
      match Graph.substitute ~env:env_bucket p.p_graph with
      | Error e ->
          raise
            (Gc_errors.Error
               (Gc_errors.Compile_error
                  { stage = "substitute"; what = e; ctx = [ ("env", key) ] }))
      | Ok (g_sub, subst) ->
          (* Pin the cache entry for the in-flight window between the
             compile and the p_instances registration, so byte-pressure
             eviction cannot drop a specialization that is about to be
             referenced. Once registered, the instance itself keeps the
             compiled core alive; the cache entry becomes evictable. *)
          let ck = fingerprint ~config:p.p_config g_sub in
          let core =
            compile_cached ~config:p.p_config ~tune_scope:p.p_tune_scope
              ~pin:true g_sub
          in
          let inst = { pi_core = core; pi_subst = subst; pi_graph = g_sub } in
          Mutex.lock p.p_lock;
          let winner =
            match Hashtbl.find_opt p.p_instances key with
            | Some w -> w
            | None ->
                Hashtbl.add p.p_instances key inst;
                inst
          in
          Mutex.unlock p.p_lock;
          Compile_cache.unpin ck;
          if winner == inst then Gc_observe.Counters.bucket_compile ()
          else Gc_observe.Counters.bucket_cache_hit ();
          winner)

let poly_instances p =
  Mutex.lock p.p_lock;
  let n = Hashtbl.length p.p_instances in
  Mutex.unlock p.p_lock;
  n

(* Translate caller bindings (symbolic-graph tensors) to the substituted
   graph's tensors, zero-padding symbolic inputs up to the instance's
   bucketed shape. Padding is sound only for row-independent (batch-like)
   symbolic axes — the contract of [bucket_syms]. *)
let poly_translate_bindings inst bindings =
  List.filter_map
    (fun ((lt : Logical_tensor.t), v) ->
      match Hashtbl.find_opt inst.pi_subst lt.id with
      | None -> None (* binding for a tensor outside this graph: drop *)
      | Some sub_lt ->
          let target = sub_lt.Logical_tensor.shape in
          if Shape.equal (Tensor.shape v) target then Some (sub_lt, v)
          else Some (sub_lt, Tensor.pad_to v target))
    bindings

let poly_pad_waste env_actual env_bucket =
  List.fold_left
    (fun acc (s, b) ->
      match List.assoc_opt s env_actual with
      | Some a when b > a -> acc + (b - a)
      | _ -> acc)
    0 env_bucket

(* Slice each output back from the bucketed shape to the request's actual
   shape (evaluated from the output's symbolic dims under the actual
   environment). *)
let poly_slice_outputs p env_actual outs =
  List.map2
    (fun (lt : Logical_tensor.t) v ->
      if Dim.has_sym lt.Logical_tensor.dims then
        match Dim.eval ~env:env_actual lt.Logical_tensor.dims with
        | Ok actual when not (Shape.equal actual (Tensor.shape v)) ->
            Tensor.slice_to v actual
        | _ -> v
      else v)
    p.p_graph.Graph.outputs outs

let poly_prepare p bindings =
  let env_actual = poly_env p bindings in
  let env_bucket = poly_bucket_env p env_actual in
  let inst = poly_instance p env_bucket in
  Gc_observe.Counters.pad_waste_rows (poly_pad_waste env_actual env_bucket);
  (env_actual, inst, poly_translate_bindings inst bindings)

let execute_poly ?reuse_outputs p bindings =
  let env_actual, inst, sub_bindings = poly_prepare p bindings in
  let outs = execute ?reuse_outputs inst.pi_core sub_bindings in
  poly_slice_outputs p env_actual outs

(* Checked variant: the full retry/fallback ladder of
   [execute_checked_report] runs on the bucketed instance (its reference
   fallback interprets the substituted concrete graph with the padded
   bindings, which is execution-equivalent), then outputs are sliced. *)
let execute_poly_checked_report ?options ?deadline_ms ?reuse_outputs p
    bindings =
  match poly_prepare p bindings with
  | exception Gc_errors.Error e -> Error e
  | exception e ->
      let backtrace = Printexc.get_backtrace () in
      Error (Gc_errors.classify ~site:"core.execute_poly" ~backtrace e)
  | env_actual, inst, sub_bindings -> (
      match
        execute_checked_report ?options ?deadline_ms ?reuse_outputs
          inst.pi_core sub_bindings
      with
      | Ok (outs, report) -> Ok (poly_slice_outputs p env_actual outs, report)
      | Error e -> Error e)

let execute_poly_checked ?options ?deadline_ms ?reuse_outputs p bindings =
  Result.map fst
    (execute_poly_checked_report ?options ?deadline_ms ?reuse_outputs p
       bindings)

(* Degraded path for the serving layer's circuit breaker: substitute the
   EXACT environment (no bucket, no padding) and interpret that concrete
   graph — the reference interpreter never sees padded rows. *)
let execute_poly_fallback ?deadline_ms p bindings =
  match
    let env_actual = poly_env p bindings in
    match Graph.substitute ~env:env_actual p.p_graph with
    | Error e ->
        Error
          (Gc_errors.Compile_error
             { stage = "substitute"; what = e; ctx = [] })
    | Ok (g_sub, subst) ->
        let sub_bindings =
          List.filter_map
            (fun ((lt : Logical_tensor.t), v) ->
              Option.map
                (fun sub_lt -> (sub_lt, v))
                (Hashtbl.find_opt subst lt.id))
            bindings
        in
        let bindings =
          List.fold_left
            (fun acc (lt : Logical_tensor.t) ->
              match lt.Logical_tensor.property with
              | Compile_const v -> (lt, v) :: acc
              | _ -> acc)
            sub_bindings
            (Graph.all_tensors g_sub)
        in
        let run () =
          Gc_observe.Counters.fallback_interp ();
          Reference.run g_sub bindings
        in
        Ok
          (match deadline_ms with
          | Some ms ->
              Guard.with_deadline ~timeout_ms:ms ~site:"core.poly_fallback" run
          | None -> run ())
  with
  | Ok outs -> Ok outs
  | Error e -> Error e
  | exception Gc_errors.Error e ->
      (match e with
      | Gc_errors.Resource_exhausted _ ->
          Gc_observe.Counters.resource_exhausted ()
      | _ -> ());
      Error e
  | exception e ->
      let backtrace = Printexc.get_backtrace () in
      Error (Gc_errors.classify ~site:"core.poly_fallback" ~backtrace e)
