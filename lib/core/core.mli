(** oneDNN Graph Compiler (OCaml reproduction) — public API.

    The expected flow mirrors the oneDNN Graph API:

    {[
      open Core
      let b = Builder.create () in
      let x = Builder.input b ~name:"x" Dtype.F32 (Shape.of_list [64; 13]) in
      let w = Builder.input b ~name:"w" ~const:true Dtype.F32 (Shape.of_list [13; 512]) in
      let y = Builder.relu b (Builder.matmul b x w) in
      let g = Builder.finalize b ~outputs:[y] in
      let compiled = compile g in
      let outputs = execute compiled [ (x, x_data); (w, w_data) ]
    ]}

    [compile] runs the Graph IR optimization pipeline (decomposition,
    constant folding, low-precision conversion, constant-weight
    preprocessing, layout propagation, fine- and coarse-grain fusion),
    lowers the fused graph through the microkernel templates to Tensor IR,
    optimizes the Tensor IR (loop merging, tensor shrinking, buffer
    planning) and prepares the execution engine. The first [execute] runs
    the constant-preprocessing init step and caches its results; later
    calls reuse them. *)

(** {1 Re-exported substrate modules} *)

module Dtype = Gc_tensor.Dtype
module Shape = Gc_tensor.Shape
module Layout = Gc_tensor.Layout
module Tensor = Gc_tensor.Tensor
module Reorder = Gc_tensor.Reorder
module Ref_ops = Gc_tensor.Ref_ops
module Machine = Gc_microkernel.Machine
module Graph = Gc_graph_ir.Graph
module Builder = Gc_graph_ir.Builder
module Op = Gc_graph_ir.Op
module Op_kind = Gc_graph_ir.Op_kind
module Logical_tensor = Gc_graph_ir.Logical_tensor
module Reference = Gc_graph_ir.Reference
module Pipeline = Gc_graph_passes.Pipeline
module Fused_op = Gc_lowering.Fused_op
module Params = Gc_lowering.Params
module Heuristic = Gc_lowering.Heuristic
module Ir = Gc_tensor_ir.Ir
module Printer = Gc_tensor_ir.Printer
module Tir_pipeline = Gc_tir_passes.Tir_pipeline

(** The observability layer: [Observe.Trace] (per-pass timings + IR stats,
    JSON export), [Observe.Counters] (runtime counters), [Observe.Json]. *)
module Observe = Gc_observe

(** {1 Compilation} *)

type config = {
  graph : Pipeline.config;  (** Graph IR pass configuration *)
  tir : Tir_pipeline.config;  (** Tensor IR pass configuration *)
  pool : Gc_runtime.Parallel.t option;
      (** domain pool for execution ([None] = shared default pool) *)
}

val default_config : ?machine:Machine.t -> unit -> config

(** A compiled partition. *)
type t

(** [compile ?config ?trace g] compiles a DNN computation graph. Raises
    [Invalid_argument] on a malformed graph. When [trace] is given, every
    Graph-IR and Tensor-IR pass (plus lowering and engine preparation) is
    timed and its before/after IR statistics are recorded into the trace. *)
val compile : ?config:config -> ?trace:Observe.Trace.t -> Graph.t -> t

(** The optimization artifacts, for inspection, testing and benchmarks. *)

val fused_graph : t -> Fused_op.graph
val tir_module : t -> Ir.module_  (** after Tensor IR optimization *)

val tir_stats : t -> Tir_pipeline.stats
val config_of : t -> config

(** [execute t bindings] runs the compiled partition. [bindings] must
    cover every graph input (including constant weights — they are read on
    the first call, preprocessed by the init step, and cached). Returns
    the graph outputs in declaration order. *)
val execute : t -> (Logical_tensor.t * Tensor.t) list -> Tensor.t list

(** Force re-running the constant preprocessing on the next execute (e.g.
    after weights changed). *)
val invalidate_constants : t -> unit

(** Compile and run the reference evaluator instead — ground truth for
    differential testing. *)
val reference : Graph.t -> (Logical_tensor.t * Tensor.t) list -> Tensor.t list

val version : string
