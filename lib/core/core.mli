(** oneDNN Graph Compiler (OCaml reproduction) — public API.

    The expected flow mirrors the oneDNN Graph API:

    {[
      open Core
      let b = Builder.create () in
      let x = Builder.input b ~name:"x" Dtype.F32 (Shape.of_list [64; 13]) in
      let w = Builder.input b ~name:"w" ~const:true Dtype.F32 (Shape.of_list [13; 512]) in
      let y = Builder.relu b (Builder.matmul b x w) in
      let g = Builder.finalize b ~outputs:[y] in
      let compiled = compile g in
      let outputs = execute compiled [ (x, x_data); (w, w_data) ]
    ]}

    [compile] runs the Graph IR optimization pipeline (decomposition,
    constant folding, low-precision conversion, constant-weight
    preprocessing, layout propagation, fine- and coarse-grain fusion),
    lowers the fused graph through the microkernel templates to Tensor IR,
    optimizes the Tensor IR (loop merging, tensor shrinking, buffer
    planning) and prepares the execution engine. The first [execute] runs
    the constant-preprocessing init step and caches its results; later
    calls reuse them. *)

(** {1 Re-exported substrate modules} *)

module Dtype = Gc_tensor.Dtype
module Shape = Gc_tensor.Shape
module Layout = Gc_tensor.Layout
module Tensor = Gc_tensor.Tensor
module Reorder = Gc_tensor.Reorder
module Ref_ops = Gc_tensor.Ref_ops
module Machine = Gc_microkernel.Machine
module Graph = Gc_graph_ir.Graph
module Builder = Gc_graph_ir.Builder
module Op = Gc_graph_ir.Op
module Op_kind = Gc_graph_ir.Op_kind
module Logical_tensor = Gc_graph_ir.Logical_tensor
module Reference = Gc_graph_ir.Reference
module Pipeline = Gc_graph_passes.Pipeline
module Fused_op = Gc_lowering.Fused_op
module Params = Gc_lowering.Params
module Heuristic = Gc_lowering.Heuristic
module Ir = Gc_tensor_ir.Ir
module Printer = Gc_tensor_ir.Printer
module Tir_pipeline = Gc_tir_passes.Tir_pipeline

(** The observability layer: [Observe.Trace] (per-pass timings + IR stats,
    JSON export), [Observe.Counters] (runtime counters), [Observe.Json]. *)
module Observe = Gc_observe

(** The typed error taxonomy ({!Gc_errors} re-exported): every failure the
    public API can surface is an [Errors.error] — [Invalid_input],
    [Compile_error], [Runtime_fault], [Resource_exhausted] or [Timeout] —
    raised as [Errors.Error] by the raising entry points and returned as
    [result] by {!compile_checked} / {!execute_checked}. *)
module Errors : sig
  include module type of Gc_errors

  (** [protect ?site f] runs [f]; [Gc_errors.Error] is caught into
      [Error e], any foreign exception is classified. *)
  val protect : ?site:string -> (unit -> 'a) -> ('a, error) result
end

(** The watchdog ({!Gc_runtime.Guard} re-exported): per-execute deadlines,
    cooperative cancellation checks, [GC_EXEC_TIMEOUT_MS]. *)
module Guard = Gc_runtime.Guard

(** {1 Compilation} *)

type config = {
  graph : Pipeline.config;  (** Graph IR pass configuration *)
  tir : Tir_pipeline.config;  (** Tensor IR pass configuration *)
  pool : Gc_runtime.Parallel.t option;
      (** domain pool for execution ([None] = shared default pool) *)
  fastpath : bool;
      (** steady-state serving fast path (default [true]): per-domain
          engine arenas pre-sized from the buffer planner's allocation
          plan, reusable execution environments and cached call-site
          scratch — see {!Gc_runtime.Engine.create} *)
}

val default_config : ?machine:Machine.t -> unit -> config

(** A compiled partition. *)
type t

(** [compile ?config ?trace g] compiles a DNN computation graph. Raises
    [Errors.Error] on a malformed graph. When [trace] is given, every
    Graph-IR and Tensor-IR pass (plus lowering and engine preparation) is
    timed and its before/after IR statistics are recorded into the trace.

    [tune_scope] names the tuning-DB shape class the partition's tunable
    ops key under; when absent and autotuning is enabled ([GC_TUNE], see
    [Gc_tuning.Autotune]) it defaults to the compile {!fingerprint}. *)
val compile :
  ?config:config -> ?trace:Observe.Trace.t -> ?tune_scope:string -> Graph.t -> t

(** The optimization artifacts, for inspection, testing and benchmarks. *)

val fused_graph : t -> Fused_op.graph
val tir_module : t -> Ir.module_  (** after Tensor IR optimization *)

val tir_stats : t -> Tir_pipeline.stats
val config_of : t -> config

val tune_scope : t -> string option
(** The tuning scope the partition compiled under ([None] when autotuning
    was off) — what the serving layer demotes on an online retune. *)

(** [execute t bindings] runs the compiled partition. [bindings] must
    cover every graph input (including constant weights — they are read on
    the first call, preprocessed by the init step, and cached). Returns
    the graph outputs in declaration order.

    Binding resolution is precomputed at compile time (one hash lookup per
    binding); the constant init step is idempotent and mutex-guarded, so
    concurrent executes from several domains are safe and run the init
    exactly once.

    [reuse_outputs] (default [false]): return pooled per-domain output
    tensors instead of freshly allocated ones. Opt-in for steady-state
    serving loops — the tensors returned by a call are overwritten by that
    domain's next execute, so callers must consume (or copy) them before
    re-executing. Pools are discarded by {!invalidate_constants}. *)
val execute :
  ?reuse_outputs:bool -> t -> (Logical_tensor.t * Tensor.t) list -> Tensor.t list

(** {1 Checked entry points}

    The resilient serving surface: the same compile/execute pipeline, but
    every failure comes back as a typed [result] instead of an exception,
    guarded by a watchdog and backed by retry + reference-interpreter
    fallback. *)

type exec_options = {
  timeout_ms : int option;
      (** watchdog deadline for the whole execute; default
          [Guard.env_timeout_ms ()] (the [GC_EXEC_TIMEOUT_MS] variable),
          [None] = no deadline *)
  retries : int;
      (** how many times a [Runtime_fault] execute is retried before
          falling back (default 1) *)
  fallback : bool;
      (** after retries are exhausted, re-run the source graph through the
          reference interpreter (default [true]; counted as
          [fallback_interp] in [Observe.Counters]) *)
  sanitize_outputs : bool;
      (** scan float outputs for NaN/Inf and promote a hit to a
          [Runtime_fault] — making silent kernel poisoning visible to the
          retry/fallback ladder (default [false]; it reads every output
          element) *)
}

val default_exec_options : unit -> exec_options

(** [execute_checked t bindings] is {!execute} with the full containment
    ladder: bindings are validated (arity, shape, dtype, layout) before
    any engine state is touched; execution runs under the watchdog
    deadline; a [Runtime_fault] is retried and then degraded to the
    reference interpreter; every failure class maps to exactly one
    [Errors.error]. [Invalid_input], [Compile_error], [Timeout] and
    [Resource_exhausted] are never retried — they are deterministic or
    resource-bound, so a retry cannot help.

    [deadline_ms] overrides [options.timeout_ms] (and hence
    [GC_EXEC_TIMEOUT_MS]) for this call only: the serving layer passes
    each request's remaining deadline here so the watchdog enforces it. *)
val execute_checked :
  ?options:exec_options ->
  ?deadline_ms:int ->
  ?reuse_outputs:bool ->
  t ->
  (Logical_tensor.t * Tensor.t) list ->
  (Tensor.t list, Errors.error) result

(** What the containment ladder actually did for a successful execute:
    whether the result came from the reference-interpreter fallback, and
    how many retries were burned first. The serving layer's circuit
    breaker feeds on this. *)
type exec_report = { used_fallback : bool; retries_used : int }

(** {!execute_checked}, additionally reporting the ladder's path. *)
val execute_checked_report :
  ?options:exec_options ->
  ?deadline_ms:int ->
  ?reuse_outputs:bool ->
  t ->
  (Logical_tensor.t * Tensor.t) list ->
  (Tensor.t list * exec_report, Errors.error) result

(** Run the reference-interpreter degraded path directly, skipping the
    compiled engine entirely (counted as [fallback_interp]). Used by the
    serving layer when a partition's circuit breaker is open. *)
val execute_fallback :
  ?deadline_ms:int ->
  t ->
  (Logical_tensor.t * Tensor.t) list ->
  (Tensor.t list, Errors.error) result

(** [compile_checked g] is {!compile} with every failure returned as a
    typed [Compile_error] (or the original typed error for boundary
    rejections). *)
val compile_checked :
  ?config:config -> ?trace:Observe.Trace.t -> Graph.t -> (t, Errors.error) result

(** Force re-running the constant preprocessing on the next execute (e.g.
    after weights changed). Also resets engine-side cached state derived
    from the old constants: the global buffers are repopulated by the next
    init run, and pooled output tensors ([execute ~reuse_outputs:true]) are
    discarded. *)
val invalidate_constants : t -> unit

(** {1 Compilation cache} *)

(** Cache key of a graph under a configuration: a digest of the canonical
    graph structure (topological op order with canonically numbered
    tensors, op kinds and attributes, per-tensor dtype/shape/layout/
    constness including compile-time constant contents) concatenated with
    a digest of the pass configuration (the pool is excluded — it carries
    execution resources, not compilation choices). Structurally identical
    graphs fingerprint equal even when built independently.

    Symbolic dims are canonicalized by first mention ([$0], [$1], ...) and
    the representative concrete size of a symbolic axis is excluded, so
    graphs differing only in a symbolic axis's representative size belong
    to one {e shape class} and fingerprint equal. *)
val fingerprint : ?config:config -> Graph.t -> string

(** Estimated resident bytes of a compiled partition: packed
    runtime-constant globals plus one arena instance per function's
    allocation plan. The compile cache charges this against
    {!Gc_tensor.Memgov} at insert, so budget-aware residency decisions
    run on a stable per-entry figure. *)
val estimated_bytes : t -> int

(** Process-wide, thread-safe compilation cache keyed by {!fingerprint}.
    Optionally bounded two ways: [set_max_entries (Some n)] bounds the
    entry count, [set_max_bytes (Some b)] (or [GC_CACHE_MAX_BYTES])
    bounds the summed {!estimated_bytes}. Both evict least-recently used
    first (use = hit or insert) and both skip {e pinned} entries — a pin
    is a hard residency guarantee taken by a registered serve handle or
    an in-flight poly specialization, so the cache can be over-bound
    while everything evictable is pinned.

    Inserts charge their estimated bytes against {!Gc_tensor.Memgov};
    eviction releases them. The cache never originates
    [Resource_exhausted] — when the budget refuses an insert even after
    LRU eviction, the entry is admitted uncharged and counted as an
    overcommit. *)
module Compile_cache : sig
  type stats = {
    hits : int;
    misses : int;
    entries : int;
    evictions : int;
    resident_bytes : int;  (** summed {!estimated_bytes} of resident entries *)
    pinned : int;  (** entries with at least one pin *)
  }

  val stats : unit -> stats
  val size : unit -> int
  val keys : unit -> string list
  val mem : string -> bool

  (** The entry's estimated bytes ([None]: not resident). *)
  val entry_bytes : string -> int option

  val set_max_entries : int option -> unit
  (** [Some n] bounds the cache to [n] entries with LRU eviction (evicts
      immediately if over); [None] (the default) is unbounded. *)

  val max_entries : unit -> int option

  val set_max_bytes : int option -> unit
  (** [Some b] bounds the summed estimated bytes, LRU eviction as above;
      [None] is unbounded unless [GC_CACHE_MAX_BYTES] armed a bound at
      start. *)

  val max_bytes : unit -> int option

  (** [pin key] takes one residency pin on the entry (false: not
      resident). Pinned entries are never evicted — not by bounds, not
      by budget pressure, not by {!evict_key}. Pins nest; every [pin]
      needs a matching {!unpin}. *)
  val pin : string -> bool

  val unpin : string -> unit
  val pins : string -> int

  (** [evict_key key] drops the entry now, releasing its budget charge.
      False when not resident or pinned. The registry's parking path. *)
  val evict_key : string -> bool

  val clear : unit -> unit
  (** Drop everything (releasing budget charges) and zero the stats.
      Ignores pins — test/bench isolation only. *)
end

(** [compile_cached ?config ?trace g]: like {!compile}, but a cache hit
    returns the already-compiled partition re-keyed to [g]'s logical
    tensors (positionally, inputs then outputs — sound because the
    fingerprint pins per-position shapes and dtypes). The engine, compiled
    code and constant-init state are shared between all graphs hitting the
    same entry, so hits assume the same runtime-constant weight values;
    call {!invalidate_constants} after swapping weights.

    When autotuning is enabled the cache key doubles as the default
    tuning scope; [tune_scope] overrides it (bucketed poly instances pass
    their symbolic source fingerprint so buckets share tuned entries).

    [pin:true] additionally takes one residency pin on the entry (hit or
    fresh insert alike); the caller must {!Compile_cache.unpin} the
    graph's fingerprint when the reference is dropped. *)
val compile_cached :
  ?config:config ->
  ?trace:Observe.Trace.t ->
  ?tune_scope:string ->
  ?pin:bool ->
  Graph.t ->
  t

(** Compile and run the reference evaluator instead — ground truth for
    differential testing. *)
val reference : Graph.t -> (Logical_tensor.t * Tensor.t) list -> Tensor.t list

(** {1 Shape-polymorphic compilation: bucketed specialization}

    A graph with symbolic dims ({!Gc_graph_ir.Dim.Sym}) compiles once per
    {e bucketed} symbol environment instead of once per exact shape: the
    request's symbol sizes are rounded up to a bucket ladder (default
    1/2/4/8/16/32, [GC_BUCKETS] override), the symbolic graph is
    substituted to that concrete bucket and compiled through
    {!compile_cached}, inputs are zero-padded up to the bucket and outputs
    sliced back to the request's true sizes.

    Zero-padding is sound only for {e row-independent} symbolic axes —
    ones where each index along the axis is computed independently (a
    batch dim). An axis that mixes positions (a sequence dim under
    softmax) must not be bucketed: exclude it from [bucket_syms] and it is
    substituted at its exact size instead (still cached per size). *)

module Buckets : sig
  type t

  val default_sizes : int list
  val of_list : int list -> t  (** sorted/deduped; rejects non-positive *)

  val of_env : unit -> int list
  (** [GC_BUCKETS="1,2,4,8,16,32"] override, else {!default_sizes}. *)

  val max_size : t -> int

  val pick : t -> int -> int
  (** Smallest bucket >= n; beyond the ladder, the next multiple of the
      largest bucket. *)
end

type poly

(** [compile_poly ?config ?buckets ?bucket_syms g] prepares a polymorphic
    compilation of [g]. Nothing is compiled until the first execute.
    [bucket_syms] (default: every symbol in [g]) lists the symbols that
    may be bucket-padded; the caller asserts their axes are
    row-independent. Raises on unknown symbol names. *)
val compile_poly :
  ?config:config -> ?buckets:int list -> ?bucket_syms:string list -> Graph.t -> poly

val poly_graph : poly -> Graph.t
val poly_syms : poly -> string list
val poly_buckets : poly -> Buckets.t
val poly_bucket_syms : poly -> string list

val poly_tune_scope : poly -> string
(** Tuning scope shared by every bucketed instance: the fingerprint of
    the symbolic source graph. *)

val poly_instances : poly -> int
(** Number of bucketed instances compiled so far. *)

val poly_env :
  poly -> (Logical_tensor.t * Tensor.t) list -> (string * int) list
(** Resolve each symbol's concrete size from the bound inputs; raises
    typed [Invalid_input] on missing bindings, rank mismatches, or one
    symbol bound to two sizes. *)

val poly_bucket_env : poly -> (string * int) list -> (string * int) list
(** Round the bucketed symbols of an environment up their bucket ladder. *)

(** Execute under the bucketed instance for the request's shape class
    (compiling it on first use — counted as [bucket_compiles] /
    [bucket_cache_hits]); pads symbolic inputs, slices outputs back. *)
val execute_poly :
  ?reuse_outputs:bool ->
  poly ->
  (Logical_tensor.t * Tensor.t) list ->
  Tensor.t list

(** {!execute_checked_report} over the bucketed instance: watchdog,
    retry, reference fallback (interpreting the substituted concrete
    graph with the padded bindings), outputs sliced back. *)
val execute_poly_checked_report :
  ?options:exec_options ->
  ?deadline_ms:int ->
  ?reuse_outputs:bool ->
  poly ->
  (Logical_tensor.t * Tensor.t) list ->
  (Tensor.t list * exec_report, Errors.error) result

val execute_poly_checked :
  ?options:exec_options ->
  ?deadline_ms:int ->
  ?reuse_outputs:bool ->
  poly ->
  (Logical_tensor.t * Tensor.t) list ->
  (Tensor.t list, Errors.error) result

(** Degraded path: substitute the {e exact} environment (no bucket, no
    padding) and run the reference interpreter on that concrete graph.
    The serving layer's circuit breaker uses this. *)
val execute_poly_fallback :
  ?deadline_ms:int ->
  poly ->
  (Logical_tensor.t * Tensor.t) list ->
  (Tensor.t list, Errors.error) result

val version : string
