(* The public face of the error taxonomy: [Core.Errors] re-exports
   [Gc_errors] (the base library every layer raises through) plus a
   result-shaped boundary adapter for the checked entry points. *)

include Gc_errors

(* [protect f] runs [f] and catches ANY exception into a typed error:
   [Gc_errors.Error] passes through, foreign exceptions are classified.
   Behind [Core.compile_checked] / [Core.execute_checked]. *)
let protect ?site f =
  match f () with
  | v -> Ok v
  | exception Error e -> Stdlib.Error e
  | exception e ->
      let backtrace = Printexc.get_backtrace () in
      Stdlib.Error (classify ?site ~backtrace e)
