open Gc_tensor
open Gc_graph_ir

let scalar ?name c = Logical_tensor.const ?name (Tensor.scalar Dtype.F32 c)

let mk ?(attrs = Attrs.empty) kind inputs =
  let shape =
    match Infer.infer_shape kind attrs inputs with
    | Ok s -> s
    | Error e -> invalid_arg ("Low_precision: " ^ e)
  in
  let dtype =
    match Infer.infer_dtype kind inputs with
    | Some d -> d
    | None -> (List.hd inputs).Logical_tensor.dtype
  in
  Op.create ~attrs kind ~inputs ~outputs:[ Logical_tensor.create dtype shape ]

let mk_to ?(attrs = Attrs.empty) kind inputs out = Op.create ~attrs kind ~inputs ~outputs:[ out ]

let is_int8 (dt : Dtype.t) = match dt with S8 | U8 -> true | _ -> false

let dequant_of g (lt : Logical_tensor.t) =
  match Graph.producer g lt with
  | Some ({ kind = Dequantize; _ } as dq) when is_int8 (List.hd dq.inputs).dtype ->
      Some dq
  | _ -> None

let convert_one g (mm : Op.t) =
  let a, b = match mm.inputs with [ a; b ] -> (a, b) | _ -> assert false in
  match (dequant_of g a, dequant_of g b) with
  | Some dqa, Some dqb ->
      let a_s = Attrs.float_exn dqa.attrs "scale"
      and a_z = Attrs.int_exn dqa.attrs "zp"
      and b_s = Attrs.float_exn dqb.attrs "scale"
      and b_z = Attrs.int_exn dqb.attrs "zp" in
      let xq = List.hd dqa.inputs and wq = List.hd dqb.inputs in
      let is_conv = mm.kind = Op_kind.Conv2d in
      let transpose_b =
        Option.value (Attrs.get_bool mm.attrs "transpose_b") ~default:false
      in
      let need_comp = a_z <> 0 in
      (* conv: the compensation term is a colsum over a rank-2 weight view;
         HWIO weights would need a per-output-channel receptive-field sum,
         so int8 conv requires symmetric (zp = 0) activations *)
      let comp_possible =
        (not is_conv)
        && Logical_tensor.is_constant wq
        && (not transpose_b)
        && Shape.rank wq.shape = 2
      in
      if b_z <> 0 || (need_comp && not comp_possible) then None
      else begin
        let c_out = Op.output mm in
        let acc = mk ~attrs:mm.attrs mm.kind [ xq; wq ] in
        let accf = mk Cast [ Op.output acc ] in
        (* Cast output inherits input dtype by default; force f32 *)
        let accf =
          Op.with_ accf
            ~outputs:[ Logical_tensor.create Dtype.F32 (Op.output acc).shape ]
        in
        let scaled = mk Mul [ Op.output accf; scalar (a_s *. b_s) ] in
        if need_comp then begin
          let wqf_out = Logical_tensor.create Dtype.F32 wq.shape in
          let wqf = mk_to Cast [ wq ] wqf_out in
          let rattrs =
            Attrs.of_list
              [ ("axis", Attrs.Int (Shape.rank wq.shape - 2)); ("keepdims", Attrs.Bool false) ]
          in
          let cs = mk ~attrs:rattrs (Reduce Sum) [ wqf_out ] in
          let comp =
            mk Mul [ Op.output cs; scalar (a_s *. b_s *. float_of_int a_z) ]
          in
          let res = mk_to Sub [ Op.output scaled; Op.output comp ] c_out in
          Some ([ mm ], [ acc; accf; scaled; wqf; cs; comp; res ])
        end
        else begin
          (* replace the Mul output with the original matmul output *)
          let res = mk_to Mul [ Op.output accf; scalar (a_s *. b_s) ] c_out in
          ignore scaled;
          Some ([ mm ], [ acc; accf; res ])
        end
      end
  | _ -> None

let run (g : Graph.t) =
  let matmuls =
    List.filter
      (fun (op : Op.t) ->
        match op.kind with Op_kind.Matmul | Op_kind.Conv2d -> true | _ -> false)
      g.Graph.ops
  in
  let g =
    List.fold_left
      (fun g mm ->
        match convert_one g mm with
        | Some (remove, add) -> Graph.replace_ops g ~remove ~add
        | None -> g)
      g matmuls
  in
  (* dequantize ops whose outputs became dead are cleaned by DCE *)
  Dce.run g
