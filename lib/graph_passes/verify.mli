(** Graph IR verifier pass.

    Re-checks the IR's structural invariants {e between} optimization
    passes, so a pass that corrupts the graph is caught at its own
    doorstep (named in the error) instead of surfacing later as a
    miscompile or an engine fault. Checks:

    - unique producers, def-before-use (every op input is a graph input,
      a constant, or produced earlier; no cycles), graph outputs produced
      — via {!Gc_graph_ir.Graph.verify};
    - per-op port arity and dtype/shape consistency
      ({!Gc_graph_ir.Infer.check} for each op);
    - metadata coherence: two edges carrying the same tensor id must
      agree on dtype and shape.

    Failures raise [Gc_errors.Error (Compile_error _)] with
    [stage = "verify"] and the offending pass's name in context.

    The pass is gated: {!Gc_graph_passes.Pipeline.run} applies it after
    every graph-rewriting pass when [GC_VERIFY_IR=1] (or after
    [set_enabled (Some true)] — CI forces it on). Disabled, it costs one
    branch per pass. *)

(** Force verification on/off ([None] returns to the [GC_VERIFY_IR]
    environment gate). *)
val set_enabled : bool option -> unit

val enabled : unit -> bool

(** [check ~pass g] verifies unconditionally; raises [Compile_error]
    naming [pass] on the first violation. *)
val check : pass:string -> Gc_graph_ir.Graph.t -> unit

(** [run ~pass g] is [g], verifying first when {!enabled}. *)
val run : pass:string -> Gc_graph_ir.Graph.t -> Gc_graph_ir.Graph.t
