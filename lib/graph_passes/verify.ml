open Gc_graph_ir

(* Enablement: GC_VERIFY_IR=1 at program start, or forced via set_enabled
   (CI and tests force it on regardless of the environment). *)
let forced : bool option ref = ref None

let env_enabled =
  lazy
    (match Sys.getenv_opt "GC_VERIFY_IR" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let set_enabled v = forced := v

let enabled () =
  match !forced with Some v -> v | None -> Lazy.force env_enabled

let fail ~pass what ctx =
  Gc_errors.compile_error ~stage:"verify" ~ctx:(("pass", pass) :: ctx) what

(* Metadata consistency across edges: logical tensors are shared by
   reference, so two edges carrying the same id must agree on dtype and
   shape — a pass that rebuilt a tensor with the same id but different
   metadata corrupted the graph in a way Graph.verify (which trusts each
   record individually) cannot see. *)
let check_metadata ~pass (g : Graph.t) =
  let seen : (int, Logical_tensor.t) Hashtbl.t = Hashtbl.create 64 in
  (* A blocked layout must name axes that exist in the tensor's shape —
     a pass that re-blocks a 2-D matmul operand and then reuses the layout
     on a 4-D conv tensor (or vice versa) produces offsets into the wrong
     physical dims, which executes as silent corruption. *)
  let check_layout (lt : Logical_tensor.t) =
    match lt.layout with
    | Gc_tensor.Layout.Plain -> ()
    | Gc_tensor.Layout.Blocked blocks ->
        let rank = Gc_tensor.Shape.rank lt.shape in
        List.iter
          (fun (axis, block) ->
            if axis < 0 || axis >= rank then
              fail ~pass "blocked layout names an axis outside the shape"
                [
                  ("tensor", lt.name);
                  ("shape", Gc_tensor.Shape.to_string lt.shape);
                  ("layout", Gc_tensor.Layout.to_string lt.layout);
                  ("axis", string_of_int axis);
                ];
            if block <= 0 then
              fail ~pass "blocked layout has a non-positive block size"
                [
                  ("tensor", lt.name);
                  ("layout", Gc_tensor.Layout.to_string lt.layout);
                  ("block", string_of_int block);
                ])
          blocks
  in
  (* dims/shape coherence: the symbolic dims vector must stay a valid
     abstraction of the concrete representative shape — a pass that
     rebuilt a tensor with stale dims would make Graph.substitute emit a
     wrong concrete shape for that edge. *)
  let check_dims (lt : Logical_tensor.t) =
    if not (Dim.consistent lt.dims lt.shape) then
      fail ~pass "symbolic dims inconsistent with concrete shape"
        [
          ("tensor", lt.name);
          ("shape", Gc_tensor.Shape.to_string lt.shape);
          ("dims", Dim.dims_to_string lt.dims);
        ]
  in
  let visit (lt : Logical_tensor.t) =
    match Hashtbl.find_opt seen lt.id with
    | None ->
        check_layout lt;
        check_dims lt;
        Hashtbl.add seen lt.id lt
    | Some first ->
        if not (Gc_tensor.Dtype.equal first.dtype lt.dtype) then
          fail ~pass "tensor id carries conflicting dtypes"
            [
              ("tensor", lt.name);
              ("id", string_of_int lt.id);
              ("dtype_a", Gc_tensor.Dtype.to_string first.dtype);
              ("dtype_b", Gc_tensor.Dtype.to_string lt.dtype);
            ];
        if not (Gc_tensor.Shape.equal first.shape lt.shape) then
          fail ~pass "tensor id carries conflicting shapes"
            [
              ("tensor", lt.name);
              ("id", string_of_int lt.id);
              ("shape_a", Gc_tensor.Shape.to_string first.shape);
              ("shape_b", Gc_tensor.Shape.to_string lt.shape);
            ];
        if not (Gc_tensor.Layout.equal first.layout lt.layout) then
          fail ~pass "tensor id carries conflicting layouts"
            [
              ("tensor", lt.name);
              ("id", string_of_int lt.id);
              ("layout_a", Gc_tensor.Layout.to_string first.layout);
              ("layout_b", Gc_tensor.Layout.to_string lt.layout);
            ]
  in
  List.iter
    (fun (op : Op.t) ->
      List.iter visit op.inputs;
      List.iter visit op.outputs)
    g.ops;
  List.iter visit g.inputs;
  List.iter visit g.outputs

let check ~pass (g : Graph.t) =
  (* structural invariants: unique producers, def-before-use (every op
     input resolvable, acyclic), outputs produced, per-op port arity and
     dtype/shape inference consistency *)
  (match Graph.verify g with
  | Ok () -> ()
  | Error e -> fail ~pass e [ ("ops", string_of_int (Graph.op_count g)) ]);
  check_metadata ~pass g

let run ~pass g =
  if enabled () then check ~pass g;
  g
