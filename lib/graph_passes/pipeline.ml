open Gc_microkernel
open Gc_graph_ir

type config = {
  machine : Machine.t;
  low_precision : bool;
  const_fold : bool;
  cse : bool;
  dce : bool;
  const_weights : bool;
  layout_propagation : bool;
  propagate_activations : bool;
  fine_fusion : bool;
  fusion_limits : Fusion.limits;
  coarse_fusion : bool;
  primitive_softmax : bool;
}

let default ?(machine = Machine.xeon_8358) () =
  {
    machine;
    low_precision = true;
    const_fold = true;
    cse = true;
    dce = true;
    const_weights = true;
    layout_propagation = true;
    propagate_activations = true;
    fine_fusion = true;
    fusion_limits = Fusion.default_limits;
    coarse_fusion = true;
    primitive_softmax = false;
  }

let no_opt ?(machine = Machine.xeon_8358) () =
  {
    (default ~machine ()) with
    low_precision = false;
    const_fold = false;
    cse = false;
    dce = false;
    const_weights = false;
    layout_propagation = false;
    propagate_activations = false;
    fine_fusion = false;
    coarse_fusion = false;
  }

(* The oneDNN-primitives baseline: the same microkernel substrate, but
   primitive-scope optimization only — weights are prepacked and cached
   and eltwise/binary chains fuse as post-ops (oneDNN post-op attrs), but
   reductions (softmax) cannot fuse, activations stay plain between
   primitives, and each primitive is its own parallel section. *)
let onednn_primitives ?(machine = Machine.xeon_8358) () =
  {
    (default ~machine ()) with
    propagate_activations = false;
    coarse_fusion = false;
    fusion_limits = { Fusion.default_limits with max_reductions = 0 };
    primitive_softmax = true;
  }

let when_ flag f g = if flag then f g else g

let run ?trace ?tune_scope cfg (g : Graph.t) =
  (match Graph.verify g with
  | Ok () -> ()
  | Error e -> invalid_arg ("Pipeline.run: invalid input graph: " ^ e));
  (* instrumented pass application: times the pass and records op/tensor
     counts before and after (Observe.Trace); [trace = None] is free *)
  let timed name f g =
    let g =
      Gc_observe.Trace.time trace ~stage:"graph" ~name
        ~stats:Gc_observe.Stats.of_graph f g
    in
    (* inter-pass IR verification (GC_VERIFY_IR / Verify.set_enabled):
       a pass that corrupted the graph fails here, named *)
    Verify.run ~pass:name g
  in
  let when_t flag name f g = if flag then timed name f g else g in
  let g = when_t cfg.low_precision "low_precision" Low_precision.run g in
  let g =
    timed "decompose" (Decompose.run ~keep_softmax:cfg.primitive_softmax) g
  in
  let g = when_t cfg.const_fold "const_fold" Const_fold.run g in
  let g = when_t cfg.cse "cse" Cse.run g in
  let g = when_t cfg.dce "dce" Dce.run g in
  let g = timed "const_prop_mark" Const_prop.mark g in
  (* Without constant-weight preprocessing, nothing may be cached: demote
     every runtime constant to a plain tensor, so weights flow in as entry
     parameters and prepack reorders execute on every run. *)
  let demote (g : Graph.t) =
    List.iter
      (fun (lt : Logical_tensor.t) ->
        match lt.property with
        | Runtime_const -> lt.property <- Variable
        | _ -> ())
      (Graph.all_tensors g);
    g
  in
  let lp =
    if cfg.layout_propagation then
      Gc_observe.Trace.time_into trace ~stage:"graph" ~name:"layout_prop"
        ~before:(Gc_observe.Stats.of_graph g)
        ~after:(fun (lp : Layout_prop.result) ->
          Gc_observe.Stats.of_graph lp.graph)
        (Layout_prop.run ?tune_scope
           ~propagate_activations:cfg.propagate_activations
           ~machine:cfg.machine)
        g
    else { Layout_prop.graph = g; params = Hashtbl.create 16 }
  in
  ignore (Verify.run ~pass:"layout_prop" lp.Layout_prop.graph);
  let split =
    let before = Gc_observe.Stats.of_graph lp.graph in
    let after (s : Const_prop.split) = Gc_observe.Stats.of_graph s.main in
    if cfg.const_weights then
      Gc_observe.Trace.time_into trace ~stage:"graph" ~name:"const_split"
        ~before ~after Const_prop.split lp.graph
    else
      Gc_observe.Trace.time_into trace ~stage:"graph" ~name:"const_demote"
        ~before ~after
        (fun g -> { Const_prop.main = demote g; init = None })
        lp.graph
  in
  ignore (Verify.run ~pass:"const_split" split.Const_prop.main);
  Option.iter
    (fun init -> ignore (Verify.run ~pass:"const_split.init" init))
    split.Const_prop.init;
  let fg =
    Gc_observe.Trace.time_into trace ~stage:"graph" ~name:"fine_fusion"
      ~before:(Gc_observe.Stats.of_graph split.main)
      ~after:Gc_observe.Stats.of_fused
      (fun main ->
        Fusion.run ~fine:cfg.fine_fusion ~limits:cfg.fusion_limits
          ~machine:cfg.machine ~params:lp.params main ~init:split.init)
      split.main
  in
  when_ cfg.coarse_fusion
    (Gc_observe.Trace.time trace ~stage:"graph" ~name:"coarse_fusion"
       ~stats:Gc_observe.Stats.of_fused
       (Coarse_fusion.run ~machine:cfg.machine))
    fg
