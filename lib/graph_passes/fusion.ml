open Gc_tensor
open Gc_graph_ir
open Gc_lowering

type limits = {
  max_post_ops : int;
  max_reorders : int;
  max_reductions : int;
  max_extra_bytes : int;
}

let default_limits =
  {
    max_post_ops = 16;
    max_reorders = 1;
    max_reductions = 2;
    max_extra_bytes = 8 * 1024 * 1024;
  }

(* Does [lt] transitively depend on any tensor in [tainted]? Used to keep
   the fused region acyclic: an external operand of a candidate post-op
   must not be computed *from* the region's own outputs. *)
let rec depends_on g (tainted : (int, unit) Hashtbl.t) (lt : Logical_tensor.t) =
  Hashtbl.mem tainted lt.id
  ||
  match Graph.producer g lt with
  | None -> false
  | Some p -> List.exists (depends_on g tainted) p.inputs

(* Grow the fusible region behind [start] (the tunable's output). The
   region is a DAG, not just a linear chain: a reduction's result feeds a
   later binary op (softmax's sub and div). Before the first reduction the
   main value must stay single-consumer (the post#1 group is compiled as
   one scalar chain); from the first reduction on, every op output is
   materialized by the post#3 scheduler, so diamonds are allowed. *)
let grow_chain ~limits ~(params : Params.t) ?(allow_reductions = true)
    ?(allow_reorders = true) g (start : Logical_tensor.t) =
  let region : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let produced : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace produced start.id ();
  let chain = ref [] in
  let c_shape = start.shape in
  let n_reduce = ref 0 and n_reorder = ref 0 and extra = ref 0 in
  let head = ref start in
  let stop = ref false in
  let candidate_ok (op : Op.t) =
    (not (Hashtbl.mem region op.id))
    && List.exists (fun (i : Logical_tensor.t) -> Hashtbl.mem produced i.id) op.inputs
    && (* external operands must not depend on region outputs (acyclicity) *)
    List.for_all
      (fun (i : Logical_tensor.t) ->
        Hashtbl.mem produced i.id || not (depends_on g produced i))
      op.inputs
    &&
    match Op_kind.category op.kind with
    | Tunable | Complex -> false
    | Fusible Reduction ->
        allow_reductions
        &&
        let rank = Shape.rank (List.hd op.inputs).shape in
        let axis =
          let a = Attrs.int_exn op.attrs "axis" in
          if a < 0 then a + rank else a
        in
        let rows_owned = params.batch > 1 || (params.npn = 1 && params.kpn = 1) in
        axis = rank - 1 && rows_owned && !n_reduce < limits.max_reductions
        (* the reduced value must be row-shaped like C *)
        && Shape.equal (List.hd op.inputs).shape c_shape
    | Fusible Movement -> (
        match op.kind with
        | Reorder ->
            allow_reorders
            && !n_reorder < limits.max_reorders
            && !n_reduce = 0 (* post#3 stores need a plain final target *)
            && Logical_tensor.equal (List.hd op.inputs) !head
            && List.length (Graph.consumers g !head) = 1
        | _ -> false)
    | Fusible Eltwise_unary ->
        Shape.equal (Op.output op).shape c_shape
        && (!n_reduce > 0
           || (Logical_tensor.equal (List.hd op.inputs) !head
              && List.length (Graph.consumers g !head) = 1))
    | Fusible Eltwise_binary ->
        let extra_bytes =
          List.fold_left
            (fun acc (i : Logical_tensor.t) ->
              if Hashtbl.mem produced i.id then acc
              else acc + (Shape.numel i.shape * Dtype.size_bytes i.dtype))
            0 op.inputs
        in
        Shape.equal (Op.output op).shape c_shape
        && !extra + extra_bytes <= limits.max_extra_bytes
        && (!n_reduce > 0
           || (List.exists (Logical_tensor.equal !head) op.inputs
              && List.length (Graph.consumers g !head) = 1))
  in
  while (not !stop) && List.length !chain < limits.max_post_ops do
    match List.find_opt candidate_ok g.Graph.ops with
    | None -> stop := true
    | Some op ->
        Hashtbl.replace region op.id ();
        List.iter
          (fun (o : Logical_tensor.t) -> Hashtbl.replace produced o.id ())
          op.outputs;
        chain := op :: !chain;
        (match op.kind with
        | Reduce _ -> incr n_reduce
        | Reorder -> incr n_reorder
        | Add | Sub | Mul | Div | Maximum | Minimum ->
            extra :=
              !extra
              + List.fold_left
                  (fun acc (i : Logical_tensor.t) ->
                    if Hashtbl.mem produced i.id then acc
                    else acc + (Shape.numel i.shape * Dtype.size_bytes i.dtype))
                  0 op.inputs
        | _ -> ());
        (match op.kind with
        | Reduce _ -> ()
        | _ -> if Shape.equal (Op.output op).shape c_shape then head := Op.output op);
        if Graph.is_output g (Op.output op) then stop := true
  done;
  List.rev !chain

let split_post_groups ~machine ~params ops =
  match
    List.find_index (fun (op : Op.t) -> match op.kind with Reduce _ -> true | _ -> false) ops
  with
  | None ->
      if ops = [] then []
      else
        [ { Fused_op.g_anchor = Anchor.best_post ~machine params ~reduction:false; g_ops = ops } ]
  | Some i ->
      let g1 = List.filteri (fun j _ -> j < i) ops in
      let g2 = List.filteri (fun j _ -> j >= i) ops in
      (if g1 = [] then []
       else
         [ { Fused_op.g_anchor = Anchor.best_post ~machine params ~reduction:false; g_ops = g1 } ])
      @ [ { Fused_op.g_anchor = Anchor.best_post ~machine params ~reduction:true; g_ops = g2 } ]

(* External inputs of a set of ops: inputs not produced inside the set. *)
let externals (ops : Op.t list) =
  let produced : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (op : Op.t) ->
      List.iter (fun (o : Logical_tensor.t) -> Hashtbl.replace produced o.id ()) op.outputs)
    ops;
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun (op : Op.t) ->
      List.filter
        (fun (i : Logical_tensor.t) ->
          if Hashtbl.mem produced i.id || Hashtbl.mem seen i.id || Logical_tensor.is_compile_const i
          then false
          else begin
            Hashtbl.add seen i.id ();
            true
          end)
        op.inputs)
    ops

(* Outputs of the set consumed outside it (or graph outputs). *)
let set_outputs g (ops : Op.t list) =
  let ids : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (op : Op.t) -> Hashtbl.replace ids op.id ()) ops;
  List.concat_map
    (fun (op : Op.t) ->
      List.filter
        (fun (o : Logical_tensor.t) ->
          Graph.is_output g o
          || List.exists
               (fun (c : Op.t) -> not (Hashtbl.mem ids c.id))
               (Graph.consumers g o))
        op.outputs)
    ops

(* Topologically order fused ops by their tensor dependencies. *)
let topo_fused (fused : Fused_op.t list) =
  let producer_of : (int, Fused_op.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (f : Fused_op.t) ->
      List.iter
        (fun (o : Logical_tensor.t) -> Hashtbl.replace producer_of o.id f)
        f.f_outputs)
    fused;
  let visited : (int, bool) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let rec visit (f : Fused_op.t) =
    match Hashtbl.find_opt visited f.fid with
    | Some true -> ()
    | Some false -> invalid_arg "Fusion: cyclic fused graph"
    | None ->
        Hashtbl.replace visited f.fid false;
        List.iter
          (fun (i : Logical_tensor.t) ->
            match Hashtbl.find_opt producer_of i.id with
            | Some p when p.fid <> f.fid -> visit p
            | _ -> ())
          f.f_inputs;
        Hashtbl.replace visited f.fid true;
        order := f :: !order
  in
  List.iter visit fused;
  List.rev !order

let run ?(fine = true) ?(limits = default_limits) ~machine ~params
    (g : Graph.t) ~init =
  let g = match Graph.topo_sort g with Ok g -> g | Error e -> invalid_arg e in
  let assigned : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let fused = ref [] in
  let get_params (mm : Op.t) =
    match Hashtbl.find_opt params mm.id with
    | Some p -> p
    | None ->
        let p = Layout_prop.choose_params ~machine g mm in
        Hashtbl.replace params mm.id p;
        p
  in
  (* pass 1: tunable ops and their chains *)
  List.iter
    (fun (op : Op.t) ->
      if Op_kind.is_tunable op.kind && not (Hashtbl.mem assigned op.id) then begin
        let p = get_params op in
        (* conv chains: anchor #3 schedules 2-D points and the pre anchors
           are claimed by the im2col gather, so reductions, reorders and
           pre-op fusion stay out of conv regions *)
        let is_conv = op.kind = Op_kind.Conv2d in
        let chain =
          if fine then
            grow_chain ~limits ~params:p ~allow_reductions:(not is_conv)
              ~allow_reorders:(not is_conv) g (Op.output op)
          else []
        in
        (* soundness trim: the post#3 scheduler materializes eltwise
           results but keeps reduction results in per-row scalars, so a
           reduction whose output escapes the region would never reach
           memory - cut the chain just before any such reduction *)
        let chain =
          (* to fixpoint: cutting the chain can strand an earlier
             reduction whose consumer was behind the cut *)
          let pass chain =
            let ids = Hashtbl.create 8 in
            List.iter (fun (o : Op.t) -> Hashtbl.replace ids o.id ()) chain;
            let escaped (c : Op.t) =
              Graph.is_output g (Op.output c)
              || not
                   (List.for_all
                      (fun (u : Op.t) -> Hashtbl.mem ids u.id)
                      (Graph.consumers g (Op.output c)))
            in
            let rec trim kept = function
              | [] -> List.rev kept
              | (c : Op.t) :: rest -> (
                  match c.kind with
                  | Reduce _ when escaped c -> List.rev kept
                  | _ -> trim (c :: kept) rest)
            in
            trim [] chain
          in
          let rec fix c =
            let c' = pass c in
            if List.length c' = List.length c then c' else fix c'
          in
          fix chain
        in
        let post_groups = split_post_groups ~machine ~params:p chain in
        (* pre-op fusion: non-constant single-use reorder producers *)
        let pre_of (input : Logical_tensor.t) operand =
          if not fine then None
          else
            match Graph.producer g input with
            | Some ({ kind = Reorder; _ } as r)
              when (not (Hashtbl.mem assigned r.id))
                   && (not (Logical_tensor.is_constant (Op.output r)))
                   && (not (Graph.is_output g input))
                   && List.length (Graph.consumers g input) = 1 ->
                Some (r, Anchor.best_pre ~machine p operand)
            | _ -> None
        in
        let a_in, b_in =
          match op.inputs with [ a; b ] -> (a, b) | _ -> assert false
        in
        let pre_a = if is_conv then None else pre_of a_in Anchor.A in
        let pre_b = if is_conv then None else pre_of b_in Anchor.B in
        let all_ops =
          (match pre_a with Some (r, _) -> [ r ] | None -> [])
          @ (match pre_b with Some (r, _) -> [ r ] | None -> [])
          @ [ op ] @ chain
        in
        List.iter (fun (o : Op.t) -> Hashtbl.replace assigned o.id ()) all_ops;
        let f =
          Fused_op.create ~tunable:op ?pre_a ?pre_b ~post_groups ~params:p
            ~inputs:(externals all_ops) ~outputs:(set_outputs g all_ops) ()
        in
        fused := f :: !fused
      end)
    g.ops;
  (* pass 2: leftover fusible runs *)
  List.iter
    (fun (op : Op.t) ->
      if not (Hashtbl.mem assigned op.id) then begin
        let run_ops = ref [ op ] in
        Hashtbl.replace assigned op.id ();
        let rec extend (cur : Op.t) =
          match cur.outputs with
          | [ out ] -> (
              match Graph.consumers g out with
              | [ c ]
                when fine
                     && (not (Hashtbl.mem assigned c.id))
                     && (not (Graph.is_output g out))
                     && Op_kind.is_fusible c.kind
                     && (match c.kind with
                        | Reduce _ -> (
                            (* only last-axis reductions are schedulable *)
                            let rank = Shape.rank (List.hd c.inputs).shape in
                            let a = Attrs.int_exn c.attrs "axis" in
                            (if a < 0 then a + rank else a) = rank - 1)
                        | _ -> true) ->
                  Hashtbl.replace assigned c.id ();
                  run_ops := c :: !run_ops;
                  extend c
              | _ -> ())
          | _ -> ()
        in
        extend op;
        let ops = List.rev !run_ops in
        let f =
          Fused_op.create
            ~post_groups:[ { Fused_op.g_anchor = Post3; g_ops = ops } ]
            ~inputs:(externals ops) ~outputs:(set_outputs g ops) ()
        in
        fused := f :: !fused
      end)
    g.ops;
  {
    Fused_op.fused = topo_fused (List.rev !fused);
    g_inputs = g.inputs;
    g_outputs = g.outputs;
    init;
  }
