open Gc_microkernel
open Gc_graph_ir
open Gc_lowering

(** The Graph IR optimization module (paper Figure 1/5): runs the pass
    sequence

    low-precision conversion → complex-op decomposition → constant folding
    → CSE → DCE → runtime-constant marking → layout propagation →
    constant-weight split (init extraction) → fine-grain fusion →
    coarse-grain fusion

    and produces the graph of Fused OPs the lowering consumes. Every pass
    can be disabled individually for the paper's ablations (Figure 8's
    middle bars disable coarse-grain fusion). *)

type config = {
  machine : Machine.t;
  low_precision : bool;
  const_fold : bool;
  cse : bool;
  dce : bool;
  const_weights : bool;  (** runtime-constant preprocessing / init split *)
  layout_propagation : bool;
  propagate_activations : bool;
      (** blocked layouts flow between Tunable OPs (graph-scope only) *)
  fine_fusion : bool;
  fusion_limits : Fusion.limits;
  coarse_fusion : bool;
  primitive_softmax : bool;
      (** keep last-axis softmax whole, lowered as one tuned kernel (the
          primitives baseline) instead of decomposed fusible ops *)
}

val default : ?machine:Machine.t -> unit -> config

(** Everything off except decomposition — the op-by-op setting. *)
val no_opt : ?machine:Machine.t -> unit -> config

(** The oneDNN-primitives baseline the paper compares against: weight
    prepacking + caching, eltwise/binary post-op fusion, int8 — but no
    softmax fusion, no cross-primitive layouts, no coarse-grain fusion,
    and one parallel section (and one API call) per primitive. *)
val onednn_primitives : ?machine:Machine.t -> unit -> config

(** [run ?trace cfg g]: when [trace] is given, every pass is timed and its
    before/after IR statistics recorded ({!Gc_observe.Trace}); [None] adds
    no work. [tune_scope] threads the compile fingerprint down to layout
    propagation for tuning-DB keyed parameter lookup (see
    {!Layout_prop.run}). *)
val run :
  ?trace:Gc_observe.Trace.t ->
  ?tune_scope:string ->
  config ->
  Graph.t ->
  Fused_op.graph
