open Gc_microkernel
open Gc_graph_ir
open Gc_lowering

(** Layout propagation (paper §Graph IR Optimization): chooses template
    parameters for every matmul (recording them for the fusion pass and
    the lowering), and propagates blocked layouts through chains of
    Tunable OPs:

    - a 2-D matmul whose consumers are all matmuls publishes its output in
      the blocked layout its template produces, so the next layer reads it
      directly with no reorder;
    - when an input arrives already blocked, the heuristic is re-run
      constrained to matching tiles and the aligned choice is kept when
      its modelled cost is within [align_tolerance] of the optimum;
    - constant weights that want a different layout get an explicit
      [Reorder] op, which is a runtime constant and is folded into the
      init function by constant-weight preprocessing;
    - graph inputs and outputs keep their plain layout (reorders at the
      boundary are fused into the templates as packing pre-ops / store
      post-ops). *)

type result = {
  graph : Graph.t;
  params : (int, Params.t) Hashtbl.t;  (** matmul op id → chosen parameters *)
}

(** [propagate_activations:false] keeps every activation plain — only the
    constant-weight prepacking is performed. This is what a primitives
    library can do (each primitive sees one op), and is the baseline's
    setting.

    [tune_scope] (the compile fingerprint of the source graph) enables
    tuning-DB consultation: each tunable op, numbered in topo order, gets
    a [Tune_db.key] under the scope and the heuristic checks the database
    before running the static model. Absent (direct pass-level callers),
    parameter choice is exactly the pre-tuning static behavior. *)
val run :
  ?tune_scope:string ->
  ?align_tolerance:float ->
  ?propagate_activations:bool ->
  machine:Machine.t ->
  Graph.t ->
  result

(** Parameter choice for one matmul op (shared with the fusion pass when
    layout propagation is disabled). *)
val choose_params :
  ?tune_key:string -> machine:Machine.t -> Graph.t -> Op.t -> Params.t
