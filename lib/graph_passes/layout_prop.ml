open Gc_tensor
open Gc_graph_ir
open Gc_lowering

type result = { graph : Graph.t; params : (int, Params.t) Hashtbl.t }

let problem_of (mm : Op.t) =
  let a = List.hd mm.inputs in
  let c = Op.output mm in
  let cr = Shape.rank c.shape in
  let m = Shape.dim c.shape (cr - 2) and n = Shape.dim c.shape (cr - 1) in
  let k = Shape.dim a.shape (Shape.rank a.shape - 1) in
  let batch = Shape.numel (Shape.sub c.shape 0 (cr - 2)) in
  (m, n, k, batch)

let dtype_of (mm : Op.t) = (List.hd mm.inputs).Logical_tensor.dtype

let conv_problem_of (cv : Op.t) =
  let w = List.nth cv.inputs 1 in
  let c = Op.output cv in
  let batch = Shape.dim c.shape 0
  and oh = Shape.dim c.shape 1
  and ow = Shape.dim c.shape 2
  and oc = Shape.dim c.shape 3 in
  let kh = Shape.dim w.shape 0
  and kw = Shape.dim w.shape 1
  and ic = Shape.dim w.shape 2 in
  (batch, oh, ow, oc, kh, kw, ic)

let choose_params ?tune_key ~machine _g (mm : Op.t) =
  match mm.kind with
  | Op_kind.Conv2d ->
      let batch, oh, ow, oc, kh, kw, c = conv_problem_of mm in
      Heuristic.choose_conv ~machine ~dtype:(dtype_of mm) ?tune_key ~batch ~oh
        ~ow ~oc ~kh ~kw ~c ()
  | _ ->
      let m, n, k, batch = problem_of mm in
      Heuristic.choose ~machine ~dtype:(dtype_of mm) ?tune_key ~batch ~m ~n ~k
        ()

(* The fused post-op chain downstream of a tunable op (single-consumer
   walk, as fine-grained fusion will see it): part of the tuning-DB key —
   post-ops run inside the template's writeback and change the measured
   balance, so "matmul" and "matmul+relu" must not share tuned entries. *)
let post_chain g (mm : Op.t) =
  let rec go acc t depth =
    if depth >= 8 then acc
    else
      match Graph.consumers g t with
      | [ op ]
        when op.Op.kind <> Op_kind.Matmul && op.Op.kind <> Op_kind.Conv2d ->
          go (Op_kind.to_string op.Op.kind :: acc) (Op.output op) (depth + 1)
      | _ -> acc
  in
  String.concat "," (List.rev (go [] (Op.output mm) 0))

let run ?tune_scope ?(align_tolerance = 1.15) ?(propagate_activations = true)
    ~machine (g : Graph.t) =
  let params : (int, Params.t) Hashtbl.t = Hashtbl.create 16 in
  let g = match Graph.topo_sort g with Ok g -> g | Error e -> invalid_arg e in
  let current = ref g in
  (* tunable ops are numbered in topo order, so the same graph always maps
     an op to the same tuning key *)
  let next_idx = ref 0 in
  let tune_key_for g (mm : Op.t) =
    let op_index = !next_idx in
    incr next_idx;
    Option.map
      (fun scope ->
        Gc_tuning.Tune_db.key ~scope ~op_index
          ~op:(Op_kind.to_string mm.kind)
          ~dtype:(dtype_of mm) ~post_ops:(post_chain g mm) ~machine)
      tune_scope
  in
  List.iter
    (fun (mm : Op.t) ->
      (* Conv2d: record tile parameters for its im2col GEMM view. The
         operands stay in plain NHWC/HWIO — the packing anchors perform the
         gather at run time, so there is no prepacked layout to publish. *)
      if mm.kind = Op_kind.Conv2d then begin
        let tune_key = tune_key_for g mm in
        Hashtbl.replace params mm.id (choose_params ?tune_key ~machine g mm)
      end;
      if mm.kind = Op_kind.Matmul then begin
        let g = !current in
        let a, b = match mm.inputs with [ a; b ] -> (a, b) | _ -> assert false in
        let c = Op.output mm in
        let m, n, k, batch = problem_of mm in
        let dtype = dtype_of mm in
        let transpose_b =
          Option.value (Attrs.get_bool mm.attrs "transpose_b") ~default:false
        in
        let tune_key = tune_key_for g mm in
        let best = Heuristic.choose ~machine ~dtype ?tune_key ~batch ~m ~n ~k () in
        (* try to align with an already-blocked A input (a constrained
           search — no tune_key: it must match the neighbour's blocking,
           not a DB entry recorded for the free problem) *)
        let p =
          match a.layout with
          | Layout.Blocked [ (0, mba); (1, kba) ] when batch = 1 && not transpose_b
            -> (
              match
                Heuristic.choose ~machine ~dtype ~batch ~mb_fixed:mba
                  ~kb_fixed:kba ~m ~n ~k ()
              with
              | aligned
                when Heuristic.cost ~machine aligned
                     <= align_tolerance *. Heuristic.cost ~machine best ->
                  aligned
              | _ -> best
              | exception Invalid_argument _ -> best)
          | _ -> best
        in
        Hashtbl.replace params mm.id p;
        (* prepack constant weights into the template's layout *)
        if
          batch = 1 && (not transpose_b)
          && Logical_tensor.is_constant b
          && not (Layout.equal b.layout (Params.b_layout p))
        then begin
          let bp =
            Logical_tensor.create ~name:(b.name ^ "_packed")
              ~layout:(Params.b_layout p) ~property:Logical_tensor.Runtime_const
              b.dtype b.shape
          in
          let reorder = Op.create Reorder ~inputs:[ b ] ~outputs:[ bp ] in
          let mm' = Op.with_ mm ~inputs:[ a; bp ] in
          current := Graph.replace_ops g ~remove:[ mm ] ~add:[ reorder; mm' ]
        end;
        (* publish a blocked output when every consumer is a 2-D matmul
           reading it as the A operand *)
        let g = !current in
        let consumers = Graph.consumers g c in
        let all_matmul_a =
          consumers <> []
          && (not (Graph.is_output g c))
          && List.for_all
               (fun (op : Op.t) ->
                 op.kind = Op_kind.Matmul
                 && Shape.rank (Op.output op).shape = 2
                 && Logical_tensor.equal (List.hd op.inputs) c)
               consumers
        in
        if propagate_activations && batch = 1 && all_matmul_a then
          c.layout <- Params.c_layout p
      end)
    g.ops;
  { graph = !current; params }
