type ctx = (string * string) list

type error =
  | Invalid_input of { what : string; ctx : ctx }
  | Compile_error of { stage : string; what : string; ctx : ctx }
  | Runtime_fault of {
      site : string;
      what : string;
      task : int option;
      backtrace : string option;
      ctx : ctx;
    }
  | Resource_exhausted of { resource : string; what : string; ctx : ctx }
  | Timeout of { site : string; timeout_ms : int; ctx : ctx }
  | Overloaded of { site : string; what : string; ctx : ctx }

exception Error of error

let invalid_input ?(ctx = []) what = raise (Error (Invalid_input { what; ctx }))

let compile_error ?(ctx = []) ~stage what =
  raise (Error (Compile_error { stage; what; ctx }))

let runtime_fault ?(ctx = []) ?task ?backtrace ~site what =
  raise (Error (Runtime_fault { site; what; task; backtrace; ctx }))

let resource_exhausted ?(ctx = []) ~resource what =
  raise (Error (Resource_exhausted { resource; what; ctx }))

let timeout ?(ctx = []) ~site ~timeout_ms () =
  raise (Error (Timeout { site; timeout_ms; ctx }))

let overloaded ?(ctx = []) ~site what =
  raise (Error (Overloaded { site; what; ctx }))

let class_name = function
  | Invalid_input _ -> "invalid_input"
  | Compile_error _ -> "compile_error"
  | Runtime_fault _ -> "runtime_fault"
  | Resource_exhausted _ -> "resource_exhausted"
  | Timeout _ -> "timeout"
  | Overloaded _ -> "overloaded"

let ctx_string = function
  | [] -> ""
  | ctx ->
      " ["
      ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) ctx)
      ^ "]"

let to_string = function
  | Invalid_input { what; ctx } ->
      Printf.sprintf "invalid input: %s%s" what (ctx_string ctx)
  | Compile_error { stage; what; ctx } ->
      Printf.sprintf "compile error (%s): %s%s" stage what (ctx_string ctx)
  | Runtime_fault { site; what; task; ctx; backtrace = _ } ->
      let task = match task with Some i -> Printf.sprintf " task %d" i | None -> "" in
      Printf.sprintf "runtime fault at %s%s: %s%s" site task what (ctx_string ctx)
  | Resource_exhausted { resource; what; ctx } ->
      Printf.sprintf "resource exhausted (%s): %s%s" resource what (ctx_string ctx)
  | Timeout { site; timeout_ms; ctx } ->
      Printf.sprintf "timeout at %s: deadline of %d ms exceeded%s" site
        timeout_ms (ctx_string ctx)
  | Overloaded { site; what; ctx } ->
      Printf.sprintf "overloaded at %s: %s%s" site what (ctx_string ctx)

let pp fmt e = Format.pp_print_string fmt (to_string e)

(* Pretty messages when the exception escapes to the toplevel unhandled. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Gc_errors.Error: " ^ to_string e)
    | _ -> None)

let classify ?(site = "unknown") ?backtrace (e : exn) =
  match e with
  | Error err -> err
  | Invalid_argument m ->
      Runtime_fault
        { site; what = "Invalid_argument: " ^ m; task = None; backtrace; ctx = [] }
  | Failure m ->
      Runtime_fault
        { site; what = "Failure: " ^ m; task = None; backtrace; ctx = [] }
  | Out_of_memory ->
      Resource_exhausted { resource = "memory"; what = "Out_of_memory"; ctx = [] }
  | e ->
      Runtime_fault
        { site; what = Printexc.to_string e; task = None; backtrace; ctx = [] }

let guard ~site f =
  try Ok (f ())
  with e ->
    let bt = Printexc.get_backtrace () in
    let backtrace = if String.length bt = 0 then None else Some bt in
    Error (classify ~site ?backtrace e)

let or_raise = function Ok v -> v | Error e -> raise (Error e)
