(** Typed error taxonomy for the whole compiler/runtime stack.

    Production graph runtimes (oneDNN Graph's API layer, nGraph's executor
    boundary) validate at the API surface and degrade gracefully instead of
    aborting the process. This module is the repository's version of that
    contract: every failure a caller can observe through the public API is
    one of five classes, each carrying enough structured context to
    diagnose the fault without a debugger.

    The module sits below every other library so that any layer — tensor
    buffers, the graph builder, the parallel runtime, the engine — can
    raise the same exception, and the API boundary ({!Core.execute_checked}
    / {!Core.compile_checked}) can catch, classify and count it. *)

(** Structured key/value context attached to an error: site-specific
    details ([("dtype", "f32"); ("requested", "512"); ...]). *)
type ctx = (string * string) list

type error =
  | Invalid_input of { what : string; ctx : ctx }
      (** The caller handed the API something malformed: wrong shape,
          dtype, arity, a missing binding, an out-of-bounds access with a
          named buffer. Rejected at the boundary before any work. *)
  | Compile_error of { stage : string; what : string; ctx : ctx }
      (** A compiler pass or the engine's closure compiler rejected or
          mis-produced an artifact. [stage] names the pipeline stage
          ("graph-ir", "lowering", "tir", "engine"). *)
  | Runtime_fault of {
      site : string;
      what : string;
      task : int option;  (** originating parallel task index, if any *)
      backtrace : string option;
      ctx : ctx;
    }
      (** Execution of compiled code failed: a worker domain raised, a
          kernel produced poisoned output, an engine invariant broke. *)
  | Resource_exhausted of { resource : string; what : string; ctx : ctx }
      (** An allocation or capacity limit failed (buffer allocation,
          pool creation). *)
  | Timeout of { site : string; timeout_ms : int; ctx : ctx }
      (** A guarded execute exceeded its deadline (GC_EXEC_TIMEOUT_MS or
          an explicit per-call deadline). *)
  | Overloaded of { site : string; what : string; ctx : ctx }
      (** The serving layer refused admission: the bounded queue is full
          (possibly shrunk by memory-budget backpressure), the request's
          deadline is provably unmeetable given recent latencies, the
          request expired while queued, or the server is draining. The
          request was shed {e before} any execute work was spent on it. *)

exception Error of error

(** {1 Raising helpers} *)

val invalid_input : ?ctx:ctx -> string -> 'a
val compile_error : ?ctx:ctx -> stage:string -> string -> 'a
val runtime_fault :
  ?ctx:ctx -> ?task:int -> ?backtrace:string -> site:string -> string -> 'a
val resource_exhausted : ?ctx:ctx -> resource:string -> string -> 'a
val timeout : ?ctx:ctx -> site:string -> timeout_ms:int -> unit -> 'a
val overloaded : ?ctx:ctx -> site:string -> string -> 'a

(** {1 Inspection} *)

(** Stable lower-case class name: "invalid_input", "compile_error",
    "runtime_fault", "resource_exhausted", "timeout", "overloaded". *)
val class_name : error -> string

(** One-line human-readable rendering, context included. *)
val to_string : error -> string

val pp : Format.formatter -> error -> unit

(** {1 Classification of foreign exceptions} *)

(** [classify ?site ?backtrace e] maps an arbitrary exception to the
    taxonomy: [Error err] passes through unchanged; [Invalid_argument] and
    [Failure] become {!Runtime_fault} at [site] (they escaped past the
    boundary validation, so by definition they are runtime faults, not
    rejectable inputs); [Out_of_memory] becomes {!Resource_exhausted};
    anything else becomes a {!Runtime_fault} carrying
    [Printexc.to_string]. *)
val classify : ?site:string -> ?backtrace:string -> exn -> error

(** [guard ~site f] runs [f] and returns [Ok v], or [Error (classify e)]
    with the backtrace captured. *)
val guard : site:string -> (unit -> 'a) -> ('a, error) result

(** [or_raise r] unwraps [Ok v] or raises [Error e]. *)
val or_raise : ('a, error) result -> 'a
