open Gc_tensor
open Gc_microkernel
open Gc_lowering

let config ?machine () =
  {
    Core.graph = Gc_graph_passes.Pipeline.onednn_primitives ?machine ();
    tir = Gc_tir_passes.Tir_pipeline.default;
    pool = None;
    fastpath = true;
  }

(* library-call overhead of one primitive invocation beyond a direct call
   (argument validation, descriptor lookup, scratchpad management) *)
let primitive_dispatch_cycles = 2_000.
let tail_penalty = 1.03

let figure7_costs ~machine ~dtype ~m ~n ~k () =
  let variant = match (dtype : Dtype.t) with S8 | U8 -> `Int8 | _ -> `F32 in
  let built = Gc_workloads.Mlp.build_single_matmul ~dtype:variant ~m ~n ~k () in
  let compiled = Core.compile built.graph in
  let r =
    Gc_perfsim.Sim.cost_module ~machine ~api_per_call:false
      (Core.tir_module compiled)
  in
  (* the kernel proper, shared by both sides: compiler and primitive
     near-parity on the same expert substrate, as in the paper *)
  let kernel = r.Gc_perfsim.Sim.cycles -. r.Gc_perfsim.Sim.api_cycles in
  let p = Heuristic.choose ~machine ~dtype ~m ~n ~k () in
  let frac =
    float_of_int (m * n * k)
    /. float_of_int (Params.m_pad p * Params.n_pad p * Params.k_pad p)
  in
  let gc = kernel +. machine.Machine.api_call_cycles in
  let prim =
    (kernel *. frac *. tail_penalty)
    +. machine.Machine.api_call_cycles +. primitive_dispatch_cycles
  in
  (gc, prim)

let primitive_matmul_cost ~machine ~dtype ?(batch = 1) ~m ~n ~k () =
  let p = Heuristic.choose ~machine ~dtype ~batch ~m ~n ~k () in
  let padded = Heuristic.cost ~machine p in
  (* The expert-tuned kernel handles ragged tails with dedicated remainder
     code instead of padding: it does only the true work, at a small
     efficiency penalty on the tail iterations. *)
  let frac =
    float_of_int (m * n * k)
    /. float_of_int (Params.m_pad p * Params.n_pad p * Params.k_pad p)
  in
  let tail_penalty = if frac < 1. then 1.03 else 1. in
  (padded *. frac *. tail_penalty) +. machine.Machine.api_call_cycles

module Matmul_primitive = struct
  type post_op = Relu | Bias of Tensor.t | Binary_add of Tensor.t

  type t = {
    compiled : Core.t;
    x_lt : Core.Logical_tensor.t;
    w_lt : Core.Logical_tensor.t;
    extra : (Core.Logical_tensor.t * Tensor.t) list;
    mutable bound_weights : Tensor.t option;
  }

  let create ?machine ~dtype ~m ~n ~k ?(post_ops = []) () =
    let module B = Core.Builder in
    let sh = Shape.of_list in
    let b = B.create () in
    let int8 = match (dtype : Dtype.t) with S8 | U8 -> true | _ -> false in
    let x_lt = B.input b ~name:"src" dtype (sh [ m; k ]) in
    let w_dtype : Dtype.t = if int8 then S8 else dtype in
    let w_lt = B.input b ~name:"weights" ~const:true w_dtype (sh [ k; n ]) in
    let xf = if int8 then B.dequantize b ~scale:0.05 ~zp:0 x_lt else x_lt in
    let wf = if int8 then B.dequantize b ~scale:0.02 ~zp:0 w_lt else w_lt in
    let y = B.matmul b xf wf in
    let extra = ref [] in
    let y =
      List.fold_left
        (fun y post ->
          match post with
          | Relu -> B.relu b y
          | Bias bias ->
              let lt = B.input b ~name:"bias" (Tensor.dtype bias) (Tensor.shape bias) in
              extra := (lt, bias) :: !extra;
              B.add b y lt
          | Binary_add operand ->
              let lt =
                B.input b ~name:"operand" (Tensor.dtype operand) (Tensor.shape operand)
              in
              extra := (lt, operand) :: !extra;
              B.add b y lt)
        y post_ops
    in
    let g = B.finalize b ~outputs:[ y ] in
    let compiled = Core.compile ~config:(config ?machine ()) g in
    { compiled; x_lt; w_lt; extra = !extra; bound_weights = None }

  let execute t ~src ~weights =
    (match t.bound_weights with
    | Some w when w == weights -> ()
    | _ ->
        Core.invalidate_constants t.compiled;
        t.bound_weights <- Some weights);
    match
      Core.execute t.compiled
        ([ (t.x_lt, src); (t.w_lt, weights) ] @ t.extra)
    with
    | [ out ] -> out
    | _ -> assert false
end
