open Gc_tensor
open Gc_microkernel
open Gc_tensor_ir
open Ir

type report = {
  cycles : float;
  compute_cycles : float;
  memory_cycles : float;
  barrier_cycles : float;
  api_cycles : float;
  parallel_sections : int;
  time_ms : float;
}

let zero_report =
  {
    cycles = 0.;
    compute_cycles = 0.;
    memory_cycles = 0.;
    barrier_cycles = 0.;
    api_cycles = 0.;
    parallel_sections = 0;
    time_ms = 0.;
  }

let add a b =
  {
    cycles = a.cycles +. b.cycles;
    compute_cycles = a.compute_cycles +. b.compute_cycles;
    memory_cycles = a.memory_cycles +. b.memory_cycles;
    barrier_cycles = a.barrier_cycles +. b.barrier_cycles;
    api_cycles = a.api_cycles +. b.api_cycles;
    parallel_sections = a.parallel_sections + b.parallel_sections;
    time_ms = a.time_ms +. b.time_ms;
  }

(* wall-clock cost with its attribution; all fields scale together *)
type cost = { w : float; comp : float; mem : float; bar : float; sect : int }

let czero = { w = 0.; comp = 0.; mem = 0.; bar = 0.; sect = 0 }

let ( ++ ) a b =
  {
    w = a.w +. b.w;
    comp = a.comp +. b.comp;
    mem = a.mem +. b.mem;
    bar = a.bar +. b.bar;
    sect = a.sect + b.sect;
  }

let scale k a =
  { a with w = k *. a.w; comp = k *. a.comp; mem = k *. a.mem; bar = k *. a.bar }

let comp w = { czero with w; comp = w }
let mem w = { czero with w; mem = w }

type ctx = {
  machine : Machine.t;
  vars : (int, int) Hashtbl.t;  (** loop vars, bound at their lower bound *)
  module_ : Ir.module_;
}

(* best-effort integer evaluation of bound/argument expressions *)
let rec eval ctx (e : expr) : int =
  match e with
  | Int i -> i
  | Float f -> int_of_float f
  | Var v -> ( match Hashtbl.find_opt ctx.vars v.vid with Some i -> i | None -> 0)
  | Binop (op, a, b) -> (
      let a = eval ctx a and b = eval ctx b in
      match op with
      | Add -> a + b
      | Sub -> a - b
      | Mul -> a * b
      | Div -> if b <> 0 then a / b else 0
      | Mod -> if b <> 0 then a mod b else 0
      | Min -> min a b
      | Max -> max a b
      | And -> if a <> 0 && b <> 0 then 1 else 0
      | Or -> if a <> 0 || b <> 0 then 1 else 0
      | Eq -> if a = b then 1 else 0
      | Ne -> if a <> b then 1 else 0
      | Lt -> if a < b then 1 else 0
      | Le -> if a <= b then 1 else 0
      | Gt -> if a > b then 1 else 0
      | Ge -> if a >= b then 1 else 0)
  | Unop (Neg, a) -> -eval ctx a
  | Unop (Not, a) -> if eval ctx a = 0 then 1 else 0
  | Unop (_, a) -> eval ctx a
  | Cast (_, a) -> eval ctx a
  | Select (c, a, b) -> if eval ctx c <> 0 then eval ctx a else eval ctx b
  | Load _ | Addr _ -> 0

(* per-element access cost for a tensor: latency of the cache level its
   whole footprint fits in, divided over the elements of one line *)
let element_cost ctx (t : tensor) =
  let m = ctx.machine in
  let bytes = tensor_bytes t in
  let per_line =
    if bytes <= m.Machine.l1_size then m.Machine.l1_latency
    else if bytes <= m.Machine.l2_size then m.Machine.l2_latency
    else if bytes <= m.Machine.llc_size / m.Machine.cores then m.Machine.llc_latency
    else m.Machine.dram_latency
  in
  let elems_per_line = max 1 (m.Machine.cache_line / Dtype.size_bytes t.tdtype) in
  per_line /. float_of_int elems_per_line

let alu_cost = 0.33 (* amortized scalar ops per cycle on a superscalar core *)

let rec expr_cost ctx (e : expr) : cost =
  match e with
  | Int _ | Float _ | Var _ -> czero
  | Load (t, idx) ->
      Array.fold_left
        (fun c i -> c ++ expr_cost ctx i)
        (mem (element_cost ctx t) ++ comp alu_cost)
        idx
  | Addr (_, idx) ->
      Array.fold_left (fun c i -> c ++ expr_cost ctx i) (comp alu_cost) idx
  | Binop (_, a, b) -> comp alu_cost ++ expr_cost ctx a ++ expr_cost ctx b
  | Unop ((Exp | Tanh | Sqrt), a) -> comp 20. ++ expr_cost ctx a
  | Unop (_, a) -> comp alu_cost ++ expr_cost ctx a
  | Cast (_, a) -> comp alu_cost ++ expr_cost ctx a
  | Select (c, a, b) ->
      comp alu_cost ++ expr_cost ctx c ++ expr_cost ctx a ++ expr_cost ctx b

let tensor_of_addr (e : expr) = match e with Addr (t, _) -> Some t | _ -> None

(* A loop body is vectorizable when it is straight-line element work: no
   nested loops, no intrinsic/function calls. *)
let simd_discount = 8.

let rec is_vectorizable (body : stmt list) =
  List.for_all
    (fun s ->
      match s with
      | Assign _ | Store _ | Alloc _ | Barrier -> true
      | If (_, th, el) -> is_vectorizable th && is_vectorizable el
      | For _ | Call _ -> false)
    body

(* cost of one execution of a statement list with [cores] available *)
let rec stmts_cost ctx ~cores (body : stmt list) : cost =
  List.fold_left (fun c s -> c ++ stmt_cost ctx ~cores s) czero body

and stmt_cost ctx ~cores (s : stmt) : cost =
  let m = ctx.machine in
  match s with
  | Assign (_, e) -> comp alu_cost ++ expr_cost ctx e
  | Store (t, idx, e) ->
      Array.fold_left
        (fun c i -> c ++ expr_cost ctx i)
        (mem (element_cost ctx t) ++ expr_cost ctx e)
        idx
  | Alloc _ | Barrier -> czero
  | If (c, th, el) ->
      let branch = if eval ctx c <> 0 then th else el in
      expr_cost ctx c ++ stmts_cost ctx ~cores branch
  | For l ->
      let lo = eval ctx l.lo and hi = eval ctx l.hi and step = max 1 (eval ctx l.step) in
      let trip = max 0 ((hi - lo + step - 1) / step) in
      if trip = 0 then czero
      else begin
        Hashtbl.replace ctx.vars l.v.vid lo;
        let body = stmts_cost ctx ~cores:(if l.parallel then 1 else cores) l.body in
        (* innermost loops of scalar element work (post-op chains, packing,
           reductions) are vectorized by the code generator: discount their
           ALU work by the SIMD width (memory cost is unchanged) *)
        let body =
          if (not l.parallel) && is_vectorizable l.body then
            let comp' = body.comp /. simd_discount in
            { body with w = body.mem +. comp' +. body.bar; comp = comp' }
          else body
        in
        Hashtbl.remove ctx.vars l.v.vid;
        if l.parallel && cores > 1 then begin
          let lanes = min cores trip in
          let per_lane = float_of_int ((trip + lanes - 1) / lanes) in
          scale per_lane body
          ++ { czero with w = m.Machine.barrier_cycles; bar = m.Machine.barrier_cycles; sect = 1 }
        end
        else scale (float_of_int trip) body
      end
  | Call ("brgemm", args) -> (
      match args with
      | [ batch; mb; nb; kb; a; _; _; _; _ ] ->
          let dtype =
            match tensor_of_addr a with Some t -> t.tdtype | None -> Dtype.F32
          in
          let cost =
            Ukernel_cost.cost ~machine:m ~dtype ~mb:(max 1 (eval ctx mb))
              ~nb:(max 1 (eval ctx nb))
              ~kb:(max 1 (eval ctx kb))
              ~bs:(max 1 (eval ctx batch))
          in
          comp cost.cycles
      | _ -> czero)
  | Call ("zero", args) -> (
      match args with
      | [ addr; count ] ->
          let n = float_of_int (max 0 (eval ctx count)) in
          let per =
            match tensor_of_addr addr with Some t -> element_cost ctx t | None -> 0.1
          in
          mem (n *. per)
      | _ -> czero)
  | Call ("copy", args) -> (
      match args with
      | [ dst; src; count ] ->
          let n = float_of_int (max 0 (eval ctx count)) in
          let per t =
            match tensor_of_addr t with Some x -> element_cost ctx x | None -> 0.1
          in
          mem (n *. (per dst +. per src))
      | _ -> czero)
  | Call (fname, _) -> (
      match Ir.find_func ctx.module_ fname with
      | Some f -> stmts_cost ctx ~cores:ctx.machine.Machine.cores f.body
      | None -> czero)

let mk_report machine (c : cost) api =
  {
    cycles = c.w +. api;
    compute_cycles = c.comp;
    memory_cycles = c.mem;
    barrier_cycles = c.bar;
    api_cycles = api;
    parallel_sections = c.sect;
    time_ms = (c.w +. api) /. (machine.Machine.freq_ghz *. 1e6);
  }

let new_ctx machine m = { machine; vars = Hashtbl.create 16; module_ = m }

let cost_func ~machine (m : Ir.module_) (f : Ir.func) =
  let ctx = new_ctx machine m in
  mk_report machine (stmts_cost ctx ~cores:machine.Machine.cores f.body) 0.

let cost_module ~machine ~api_per_call (m : Ir.module_) =
  let entry = Ir.func_exn m m.entry in
  let ctx = new_ctx machine m in
  let total = stmts_cost ctx ~cores:machine.Machine.cores entry.body in
  let calls =
    List.length
      (List.filter
         (fun s -> match s with Call (n, _) -> Intrinsic.lookup n = None | _ -> false)
         entry.body)
  in
  let api =
    machine.Machine.api_call_cycles
    *. float_of_int (if api_per_call then max 1 calls else 1)
  in
  mk_report machine total api

let json_of_report r =
  Gc_observe.Json.Obj
    [
      ("cycles", Gc_observe.Json.Float r.cycles);
      ("compute_cycles", Gc_observe.Json.Float r.compute_cycles);
      ("memory_cycles", Gc_observe.Json.Float r.memory_cycles);
      ("barrier_cycles", Gc_observe.Json.Float r.barrier_cycles);
      ("api_cycles", Gc_observe.Json.Float r.api_cycles);
      ("parallel_sections", Gc_observe.Json.Int r.parallel_sections);
      ("time_ms", Gc_observe.Json.Float r.time_ms);
    ]

let pp_report fmt r =
  Format.fprintf fmt
    "cycles=%.3e (compute %.2e, memory %.2e, barriers %.2e, api %.2e) sections=%d time=%.3fms"
    r.cycles r.compute_cycles r.memory_cycles r.barrier_cycles r.api_cycles
    r.parallel_sections r.time_ms
