open Gc_microkernel
open Gc_tensor_ir

(** The performance simulator: a deterministic analytical machine model
    that costs a compiled Tensor IR module on a modelled CPU (default: the
    paper's 32-core Xeon 8358). It substitutes for the paper's hardware
    testbed (see DESIGN.md): absolute cycle counts are estimates, but the
    quantities the compiler's optimizations change — microkernel work,
    cache-level-dependent memory traffic, barriers per parallel section,
    per-primitive API-call overhead — are modelled from first principles,
    so relative comparisons (compiled graph vs primitives, fusion on vs
    off) reproduce the paper's shapes machine-independently.

    Cost rules:
    - [brgemm] intrinsics are costed by {!Ukernel_cost};
    - loads/stores cost latency-per-element of the cache level the
      accessed tensor's working set fits in (int8 moves 4× more elements
      per line than f32);
    - a parallel loop divides its body over the remaining cores and adds
      one barrier; nested parallel loops run sequentially on their core,
      exactly like the execution engine;
    - guards take their then-branch; loop variables evaluate at their
      lower bound when a bound or argument is not constant. *)

type report = {
  cycles : float;  (** total modelled cycles *)
  compute_cycles : float;  (** microkernel + scalar ALU work *)
  memory_cycles : float;  (** loads/stores through the cache model *)
  barrier_cycles : float;
  api_cycles : float;
  parallel_sections : int;
  time_ms : float;  (** cycles / frequency *)
}

val zero_report : report
val add : report -> report -> report

(** [cost_module ~machine ~api_per_call m] costs one execution of the
    module's entry function. [api_per_call] charges one framework API call
    per entry-level function call (the primitives baseline); otherwise one
    call total (a compiled partition is invoked once). *)
val cost_module : machine:Machine.t -> api_per_call:bool -> Ir.module_ -> report

(** Cost of a single function (all cores available at entry). *)
val cost_func : machine:Machine.t -> Ir.module_ -> Ir.func -> report

val pp_report : Format.formatter -> report -> unit

(** JSON form of a report, for the observability trace exporter (paired
    with wallclock and runtime-counter data in the trace's "perfsim"
    section). *)
val json_of_report : report -> Gc_observe.Json.t
