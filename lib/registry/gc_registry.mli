(** Multi-model registry: fault-isolated tenancy over one serve tier.

    The serve tier ([Gc_serve]) gives each registered handle its own
    breaker, quarantine state, supervision health and weighted-fair
    admission share — but it manages {e handles}, not {e models}: nothing
    owns the compiled artifact's lifecycle. This module adds that layer:

    - {b Named models} with versions: {!load}, {!hot_swap}, {!retire}.
      A hot swap whose new graph fingerprints identically to the bound
      artifact takes the cheap weights-swap path
      ([Core.invalidate_constants] behind the live handle — the next
      execution re-runs one-time constant preprocessing); a structural
      change compiles the new artifact first and flips the handle
      atomically ({!Gc_serve.rebind}), so traffic never observes a
      half-swapped model.
    - {b Budget-aware residency}: every resident model pins its
      compile-cache entry ([Core.compile_cached ~pin:true]), whose
      estimated bytes are charged against the [Memgov] ledger. When a
      compile hits [Resource_exhausted], the registry parks the
      least-recently-used {e idle} tenant (unbind, unpin, evict its
      cache entry, run a major GC so finalizer-released buffers actually
      return bytes) and retries — so a budget sized for ~2 resident
      models serves a wider zipf mix through eviction and lazy
      recompile, and the pressure never surfaces to a client whose
      deadline still holds.
    - {b Lazy re-admission}: submitting to a {!Parked} model recompiles
      through the cache (hits if the entry survived) and rebinds before
      admission.
    - {b Fault isolation}: each model's faults (crash loops, quarantine,
      breaker trips) are scoped to its own handle by the serve tier; the
      registry folds per-model states into one supervision component
      (["registry"], [Degraded] while any resident model is
      quarantined).

    Locking: each model has a flight lock serializing its residency
    transitions, taken before the registry mutex and before any serve
    lock; cross-model parking uses [try_lock] on the victim's flight
    lock (skipping busy victims), so concurrent reloads that park each
    other's tenants cannot deadlock.

    The registry manages monomorphic models. Shape-polymorphic handles
    ([Gc_serve.register_poly]) remain direct serve-tier clients — their
    in-flight specializations pin their own cache entries. *)

module Errors = Core.Errors

type t

(** [Resident]: compiled, pinned in the cache, handle bound.
    [Parked]: evicted under budget pressure (or {!park}); the handle
    survives and the next {!submit} re-admits lazily.
    [Retired]: permanently removed; the name may be {!load}ed anew. *)
type status = Resident | Parked | Retired

val status_string : status -> string

(** [create ()] builds a registry over its own serve server ([?config]
    forwarded to {!Gc_serve.create}) — or over [?server], whose lifecycle
    then stays the caller's. Registers the ["registry"] supervision
    component when supervision is enabled. *)
val create : ?config:Gc_serve.config -> ?server:Gc_serve.t -> unit -> t

val server : t -> Gc_serve.t

(** {1 Lifecycle} *)

(** [load t ~name graph] compiles (pinned, budget-charged, parking idle
    LRU tenants on pressure) and registers the model. [weight] is its
    weighted-fair admission share. Errors: name already live
    ([Invalid_input]), compile failure, or [Resource_exhausted] when
    nothing is left to park. A failed load publishes nothing. *)
val load :
  ?weight:float ->
  ?config:Core.config ->
  t ->
  name:string ->
  Core.Graph.t ->
  (unit, Errors.error) result

(** [hot_swap t ~name graph] replaces the model's graph, bumping its
    version. Same fingerprint and resident: constants-invalidation
    behind the live handle. Otherwise: compile-then-rebind; the old
    cache entry is unpinned and evicted. [config] defaults to the
    model's load-time config (note: a config change always fingerprints
    differently, hence always structural). *)
val hot_swap :
  ?config:Core.config ->
  t ->
  name:string ->
  Core.Graph.t ->
  (unit, Errors.error) result

(** Unregister the model's handle and release its residency. Idempotent;
    [false] when the name is unknown or already retired. *)
val retire : t -> string -> bool

(** Voluntarily evict an idle resident model (the same transition budget
    pressure takes). [false] if unknown, not resident, mid-transition,
    or it has queued work. *)
val park : t -> string -> bool

(** {1 Serving} *)

(** [submit t name bindings] ensures residency (lazily recompiling a
    parked model) and admits the request under the model's quota.
    [Error] only for registry-level refusals (unknown/retired model,
    reload failure); admission-level shedding resolves the {e ticket}
    with [Error (Overloaded _)] as usual. *)
val submit :
  ?deadline_ms:int ->
  t ->
  string ->
  (Core.Logical_tensor.t * Core.Tensor.t) list ->
  (Gc_serve.ticket, Errors.error) result

(** Submit + await, flattened. *)
val call :
  ?deadline_ms:int ->
  t ->
  string ->
  (Core.Logical_tensor.t * Core.Tensor.t) list ->
  Gc_serve.outcome

(** {1 Introspection} *)

type model_info = {
  mi_name : string;
  mi_status : status;
  mi_version : int;
  mi_weight : float;
  mi_cache_key : string;  (** compile-cache fingerprint *)
  mi_serve : Gc_serve.handle_stats;
}

(** Registered names (including retired), sorted. *)
val names : t -> string list

val status_of : t -> string -> status option
val version : t -> string -> int option
val model_info : t -> string -> model_info option

(** The folded ["registry"] supervision component status (also what the
    supervisor polls). *)
val health : t -> Gc_supervise.component_health

(** Per-model JSON object keyed by name — status, version, weight and
    serve-tier tallies. Feeds [gc_cli health]. *)
val to_json : t -> Gc_observe.Json.t

(** Retire every model, drop the supervision component, and (when the
    registry owns its server) drain and stop the serve tier. *)
val shutdown : ?drain_deadline_ms:int -> t -> unit
