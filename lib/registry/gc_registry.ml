(* Multi-model registry with fault-isolated tenancy. See gc_registry.mli.

   Locking: [rg_mu] guards the model table and every model's status
   fields; each model additionally has a flight lock serializing its own
   residency transitions (load, swap, park, reload), taken BEFORE rg_mu
   and never while holding another model's flight lock — cross-model
   parking uses try_lock, so two models reloading and parking each other
   cannot deadlock, they just skip the busy victim. Compiles run under
   the flight lock but outside rg_mu, so one model's recompile never
   blocks another model's lookups or submissions. *)

module Errors = Core.Errors
module Counters = Gc_observe.Counters
module Events = Gc_observe.Events
module Labels = Gc_observe.Labels
module Json = Gc_observe.Json
module Memgov = Gc_tensor.Memgov
module Supervise = Gc_supervise

type status = Resident | Parked | Retired

let status_string = function
  | Resident -> "resident"
  | Parked -> "parked"
  | Retired -> "retired"

type model = {
  md_name : string;
  md_weight : float;
  md_config : Core.config;
  md_handle : Gc_serve.handle;
  md_flight : Mutex.t;
  mutable md_graph : Core.Graph.t;
  mutable md_key : string;  (* fingerprint of the current graph+config *)
  mutable md_core : Core.t option;  (* the bound artifact while Resident *)
  mutable md_version : int;
  mutable md_status : status;
  mutable md_last_used : float;  (* LRU stamp for park-victim selection *)
}

type t = {
  rg_mu : Mutex.t;
  rg_server : Gc_serve.t;
  rg_owns_server : bool;
  rg_models : (string, model) Hashtbl.t;
  mutable rg_sup : Supervise.registration option;
  mutable rg_closed : bool;
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let now () = Unix.gettimeofday ()

let server t = t.rg_server

(* {2 Supervision: fold per-model health into one component} *)

let registry_status t =
  let models =
    locked t.rg_mu (fun () ->
        Hashtbl.fold (fun _ m acc -> m :: acc) t.rg_models [])
  in
  let live = List.filter (fun m -> m.md_status <> Retired) models in
  let quarantined =
    List.filter
      (fun m ->
        m.md_status = Resident && Gc_serve.is_quarantined m.md_handle)
      live
  in
  let parked = List.filter (fun m -> m.md_status = Parked) live in
  let per_model =
    String.concat " "
      (List.map
         (fun m ->
           Printf.sprintf "%s=%s%s" m.md_name
             (status_string m.md_status)
             (if
                m.md_status = Resident
                && Gc_serve.is_quarantined m.md_handle
              then "(quarantined)"
              else ""))
         (List.sort (fun a b -> compare a.md_name b.md_name) live))
  in
  let level =
    if quarantined <> [] then Supervise.Degraded else Supervise.Healthy
  in
  {
    Supervise.ch_name = "registry";
    ch_level = level;
    ch_detail =
      Printf.sprintf "%d model(s), %d parked, %d quarantined%s"
        (List.length live) (List.length parked) (List.length quarantined)
        (if per_model = "" then "" else ": " ^ per_model);
  }

let create ?config ?server () =
  let rg_server, rg_owns_server =
    match server with
    | Some s -> (s, false)
    | None -> (Gc_serve.create ?config (), true)
  in
  let t =
    {
      rg_mu = Mutex.create ();
      rg_server;
      rg_owns_server;
      rg_models = Hashtbl.create 8;
      rg_sup = None;
      rg_closed = false;
    }
  in
  if (Supervise.default_policy ()).Supervise.sup_enabled then
    t.rg_sup <-
      Some
        (Supervise.register ~name:"registry"
           ~tick:(fun () -> ())
           ~status:(fun () -> registry_status t));
  t

(* {2 Residency} *)

let find_opt t name =
  locked t.rg_mu (fun () -> Hashtbl.find_opt t.rg_models name)

let unknown_model name =
  Errors.Invalid_input
    { what = "unknown model"; ctx = [ ("model", name) ] }

let retired_model name =
  Errors.Invalid_input
    { what = "model is retired"; ctx = [ ("model", name) ] }

(* Park one idle Resident victim, LRU by last use, skipping [excluding]
   and any model whose flight lock is busy (it is mid-transition; parking
   it would deadlock or race). Returns whether a victim was parked. The
   idleness check (nothing queued) makes parking invisible to admitted
   traffic: in-flight executes keep the old artifact alive through their
   own references. *)
let park_victim t ~excluding =
  let candidates =
    locked t.rg_mu (fun () ->
        Hashtbl.fold
          (fun _ m acc ->
            if m.md_status = Resident && m.md_name <> excluding then m :: acc
            else acc)
          t.rg_models [])
  in
  let by_lru =
    List.sort (fun a b -> compare a.md_last_used b.md_last_used) candidates
  in
  let rec try_park = function
    | [] -> false
    | m :: rest ->
        if Mutex.try_lock m.md_flight then begin
          let parked =
            Fun.protect
              ~finally:(fun () -> Mutex.unlock m.md_flight)
              (fun () ->
                let hs = Gc_serve.handle_stats t.rg_server m.md_handle in
                if m.md_status = Resident && hs.Gc_serve.hs_queued = 0 then begin
                  Gc_serve.unbind t.rg_server m.md_handle;
                  m.md_core <- None;
                  Core.Compile_cache.unpin m.md_key;
                  ignore (Core.Compile_cache.evict_key m.md_key);
                  locked t.rg_mu (fun () -> m.md_status <- Parked);
                  Counters.model_parked ();
                  Labels.incr ~label:m.md_name "parked";
                  Events.record ~kind:"model_park" ~component:m.md_name
                    "evicted from residency under memory-budget pressure";
                  true
                end
                else false)
          in
          if parked then true else try_park rest
        end
        else try_park rest
  in
  try_park by_lru

(* Compile a graph into residency through the cache, taking a pin.
   Budget pressure is absorbed by parking idle LRU tenants (then running
   a major GC so their finalizer-released buffers actually return bytes)
   and retrying; [Resource_exhausted] escapes only when there is nothing
   left to park. *)
let rec compile_pinned t ~excluding ~config graph =
  match Core.compile_cached ~config ~pin:true graph with
  | core -> core
  | exception (Errors.Error (Errors.Resource_exhausted _) as e) ->
      if park_victim t ~excluding then begin
        Gc.full_major ();
        compile_pinned t ~excluding ~config graph
      end
      else raise e

let compile_into_residency t m =
  compile_pinned t ~excluding:m.md_name ~config:m.md_config m.md_graph

(* Pinned entries are invisible to the cache's own LRU eviction, so when
   resident models alone push the cache over its byte bound
   ([GC_CACHE_MAX_BYTES]) the bound can only be restored by giving up
   residency: park idle LRU tenants (which unpins and evicts their
   entries) until the cache fits again or nothing parkable remains.
   Called after every transition into residency. *)
let enforce_cache_bound t ~excluding =
  match Core.Compile_cache.max_bytes () with
  | None -> ()
  | Some cap ->
      let over () =
        (Core.Compile_cache.stats ()).Core.Compile_cache.resident_bytes > cap
      in
      let rec go budget =
        if budget > 0 && over () && park_victim t ~excluding then
          go (budget - 1)
      in
      go 16

(* Make [m] Resident. Caller holds [m.md_flight]. *)
let ensure_resident_flight t m =
  match locked t.rg_mu (fun () -> m.md_status) with
  | Retired -> Error (retired_model m.md_name)
  | Resident -> Ok ()
  | Parked -> (
      match compile_into_residency t m with
      | core ->
          Gc_serve.rebind t.rg_server m.md_handle core;
          m.md_core <- Some core;
          locked t.rg_mu (fun () -> m.md_status <- Resident);
          Counters.model_reloaded ();
          Labels.incr ~label:m.md_name "reloaded";
          Events.record ~kind:"model_reload" ~component:m.md_name
            "re-admitted via lazy recompile through the compile cache";
          enforce_cache_bound t ~excluding:m.md_name;
          Ok ()
      | exception Errors.Error e -> Error e
      | exception e ->
          Error (Errors.classify ~site:"registry.reload" e))

(* {2 Lifecycle} *)

let closed_error () =
  Errors.Invalid_input { what = "registry is shut down"; ctx = [] }

let load ?(weight = 1.) ?config t ~name graph =
  let config =
    match config with Some c -> c | None -> Core.default_config ()
  in
  if locked t.rg_mu (fun () -> t.rg_closed) then Error (closed_error ())
  else
    let live_exists =
      match find_opt t name with
      | Some m -> locked t.rg_mu (fun () -> m.md_status) <> Retired
      | None -> false
    in
    if live_exists then
      Error
        (Errors.Invalid_input
           {
             what = "model already loaded (use hot_swap)";
             ctx = [ ("model", name) ];
           })
    else
      (* compile first so a failed load publishes nothing; a retired name
         is revived under a fresh record (new handle, version restarts) *)
      match compile_pinned t ~excluding:name ~config graph with
      | core ->
          let handle = Gc_serve.register ~name ~weight t.rg_server core in
          let m =
            {
              md_name = name;
              md_weight = weight;
              md_config = config;
              md_handle = handle;
              md_flight = Mutex.create ();
              md_graph = graph;
              md_key = Core.fingerprint ~config graph;
              md_core = Some core;
              md_version = 1;
              md_status = Resident;
              md_last_used = now ();
            }
          in
          locked t.rg_mu (fun () -> Hashtbl.replace t.rg_models name m);
          Counters.model_loaded ();
          Labels.incr ~label:name "loaded";
          Events.record ~kind:"model_load" ~component:name
            (Printf.sprintf "version 1, weight %.2f" weight);
          enforce_cache_bound t ~excluding:name;
          Ok ()
      | exception Errors.Error e -> Error e
      | exception e -> Error (Errors.classify ~site:"registry.load" e)

let retire t name =
  match find_opt t name with
  | None -> false
  | Some m ->
      Mutex.lock m.md_flight;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock m.md_flight)
        (fun () ->
          let was =
            locked t.rg_mu (fun () ->
                let was = m.md_status in
                m.md_status <- Retired;
                was)
          in
          if was = Retired then false
          else begin
            if was = Resident then begin
              Gc_serve.unbind t.rg_server m.md_handle;
              m.md_core <- None;
              Core.Compile_cache.unpin m.md_key;
              ignore (Core.Compile_cache.evict_key m.md_key)
            end;
            Gc_serve.unregister t.rg_server m.md_handle;
            Counters.model_retired ();
            Labels.incr ~label:name "retired";
            Events.record ~kind:"model_retire" ~component:name
              (Printf.sprintf "version %d retired" m.md_version);
            true
          end)

let hot_swap ?config t ~name graph =
  match find_opt t name with
  | None -> Error (unknown_model name)
  | Some m ->
      Mutex.lock m.md_flight;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock m.md_flight)
        (fun () ->
          if locked t.rg_mu (fun () -> m.md_status) = Retired then
            Error (retired_model name)
          else begin
            let config = Option.value config ~default:m.md_config in
            let new_key = Core.fingerprint ~config graph in
            let same_artifact =
              new_key = m.md_key
              && locked t.rg_mu (fun () -> m.md_status) = Resident
            in
            if same_artifact then begin
              (* the weights-swap path: same compiled structure, updated
                 runtime-constant contents. A cache hit re-keys the shared
                 artifact to the NEW graph's logical tensors (so bindings
                 against the new graph resolve), then we drop the derived
                 constant state — the next execute re-runs the one-time
                 init against the new weights. The extra pin from the hit
                 is released against the old residency pin: net one. *)
              let core = Core.compile_cached ~config ~pin:true graph in
              Core.Compile_cache.unpin m.md_key;
              Core.invalidate_constants core;
              Gc_serve.rebind t.rg_server m.md_handle core;
              m.md_core <- Some core;
              m.md_graph <- graph;
              locked t.rg_mu (fun () ->
                  m.md_version <- m.md_version + 1);
              Counters.hot_swap ();
              Labels.incr ~label:name "hot_swap";
              Events.record ~kind:"hot_swap" ~component:name
                (Printf.sprintf
                   "version %d: constants invalidated behind the live handle"
                   m.md_version);
              Ok ()
            end
            else begin
              (* structural swap: compile the new artifact, then flip the
                 handle atomically and release the old pin *)
              let old_key = m.md_key in
              let was_resident =
                locked t.rg_mu (fun () -> m.md_status) = Resident
              in
              match compile_pinned t ~excluding:name ~config graph with
              | core ->
                  Gc_serve.rebind t.rg_server m.md_handle core;
                  m.md_core <- Some core;
                  m.md_graph <- graph;
                  m.md_key <- new_key;
                  if was_resident then begin
                    Core.Compile_cache.unpin old_key;
                    ignore (Core.Compile_cache.evict_key old_key)
                  end;
                  locked t.rg_mu (fun () ->
                      m.md_status <- Resident;
                      m.md_version <- m.md_version + 1);
                  Counters.hot_swap ();
                  Labels.incr ~label:name "hot_swap";
                  Events.record ~kind:"hot_swap" ~component:name
                    (Printf.sprintf "version %d: new artifact bound"
                       m.md_version);
                  enforce_cache_bound t ~excluding:name;
                  Ok ()
              | exception Errors.Error e -> Error e
              | exception e ->
                  Error (Errors.classify ~site:"registry.hot_swap" e)
            end
          end)

(* {2 Serving} *)

let submit ?deadline_ms t name bindings =
  match find_opt t name with
  | None -> Error (unknown_model name)
  | Some m ->
      (* The flight lock covers ensure-resident AND admission, so a
         concurrent parker (which try_locks the flight) cannot unbind
         between the residency check and the queue push. Admission never
         blocks on execution, so the hold is short. *)
      Mutex.lock m.md_flight;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock m.md_flight)
        (fun () ->
          locked t.rg_mu (fun () -> m.md_last_used <- now ());
          match ensure_resident_flight t m with
          | Error e -> Error e
          | Ok () ->
              Ok (Gc_serve.submit ?deadline_ms t.rg_server m.md_handle bindings))

let call ?deadline_ms t name bindings =
  match submit ?deadline_ms t name bindings with
  | Error e -> Error e
  | Ok ticket -> Gc_serve.await ticket

let park t name =
  match find_opt t name with
  | None -> false
  | Some m ->
      if not (Mutex.try_lock m.md_flight) then false
      else
        Fun.protect
          ~finally:(fun () -> Mutex.unlock m.md_flight)
          (fun () ->
            let hs = Gc_serve.handle_stats t.rg_server m.md_handle in
            if
              locked t.rg_mu (fun () -> m.md_status) = Resident
              && hs.Gc_serve.hs_queued = 0
            then begin
              Gc_serve.unbind t.rg_server m.md_handle;
              m.md_core <- None;
              Core.Compile_cache.unpin m.md_key;
              ignore (Core.Compile_cache.evict_key m.md_key);
              locked t.rg_mu (fun () -> m.md_status <- Parked);
              Counters.model_parked ();
              Labels.incr ~label:name "parked";
              Events.record ~kind:"model_park" ~component:name
                "parked on request";
              true
            end
            else false)

(* {2 Introspection} *)

type model_info = {
  mi_name : string;
  mi_status : status;
  mi_version : int;
  mi_weight : float;
  mi_cache_key : string;
  mi_serve : Gc_serve.handle_stats;
}

let names t =
  locked t.rg_mu (fun () ->
      List.sort compare
        (Hashtbl.fold (fun n _ acc -> n :: acc) t.rg_models []))

let status_of t name =
  Option.map
    (fun m -> locked t.rg_mu (fun () -> m.md_status))
    (find_opt t name)

let version t name =
  Option.map
    (fun m -> locked t.rg_mu (fun () -> m.md_version))
    (find_opt t name)

let model_info t name =
  Option.map
    (fun m ->
      let status, version =
        locked t.rg_mu (fun () -> (m.md_status, m.md_version))
      in
      {
        mi_name = m.md_name;
        mi_status = status;
        mi_version = version;
        mi_weight = m.md_weight;
        mi_cache_key = m.md_key;
        mi_serve = Gc_serve.handle_stats t.rg_server m.md_handle;
      })
    (find_opt t name)

let health t = registry_status t

let to_json t =
  let infos = List.filter_map (model_info t) (names t) in
  Json.Obj
    (List.map
       (fun i ->
         let s = i.mi_serve in
         ( i.mi_name,
           Json.Obj
             [
               ("status", Json.String (status_string i.mi_status));
               ("version", Json.Int i.mi_version);
               ("weight", Json.Float i.mi_weight);
               ("submitted", Json.Int s.Gc_serve.hs_submitted);
               ("admitted", Json.Int s.Gc_serve.hs_admitted);
               ("ok", Json.Int s.Gc_serve.hs_ok);
               ("shed", Json.Int s.Gc_serve.hs_shed);
               ("quota_shed", Json.Int s.Gc_serve.hs_quota_shed);
               ("queued", Json.Int s.Gc_serve.hs_queued);
               ("bound", Json.Bool s.Gc_serve.hs_bound);
               ("quarantined", Json.Bool s.Gc_serve.hs_quarantined);
             ] ))
       infos)

let shutdown ?drain_deadline_ms t =
  let already = locked t.rg_mu (fun () -> t.rg_closed) in
  if not already then begin
    locked t.rg_mu (fun () -> t.rg_closed <- true);
    List.iter (fun n -> ignore (retire t n)) (names t);
    (match t.rg_sup with
    | Some reg ->
        t.rg_sup <- None;
        Supervise.unregister reg
    | None -> ());
    if t.rg_owns_server then Gc_serve.shutdown ?drain_deadline_ms t.rg_server
  end
