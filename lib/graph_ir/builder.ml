open Gc_tensor

type t = {
  mutable ops : Op.t list;  (* reversed *)
  mutable inputs : Logical_tensor.t list;  (* reversed *)
}

let create () = { ops = []; inputs = [] }

let input ?name ?layout ?(const = false) ?dims t dtype shape =
  let property =
    if const then Logical_tensor.Runtime_const else Logical_tensor.Variable
  in
  let dims = Option.map Array.of_list dims in
  let lt = Logical_tensor.create ?name ?layout ~property ?dims dtype shape in
  t.inputs <- lt :: t.inputs;
  lt

let const ?name _t tensor = Logical_tensor.const ?name tensor

let scalar_const ?name t v =
  const ?name t (Tensor.scalar Dtype.F32 v)

let push t op =
  t.ops <- op :: t.ops;
  Op.output op

let add_op ?name ?attrs t kind ~inputs ~output =
  push t (Op.create ?name ?attrs kind ~inputs ~outputs:[ output ])

let infer_output ?(attrs = Attrs.empty) kind inputs =
  let shape =
    match Infer.infer_shape kind attrs inputs with
    | Ok s -> s
    | Error e ->
        Gc_errors.invalid_input
          ~ctx:[ ("op", Op_kind.to_string kind) ]
          (Printf.sprintf "Builder.%s: %s" (Op_kind.to_string kind) e)
  in
  let dtype =
    match Infer.infer_dtype kind inputs with
    | Some d -> d
    | None -> (List.hd inputs).Logical_tensor.dtype
  in
  let dims = Infer.infer_dims kind attrs inputs shape in
  Logical_tensor.create ~dims dtype shape

let simple ?name ?(attrs = Attrs.empty) t kind inputs =
  let out = infer_output ~attrs kind inputs in
  push t (Op.create ?name ~attrs kind ~inputs ~outputs:[ out ])

let matmul ?name ?(transpose_b = false) t a b =
  let attrs =
    if transpose_b then Attrs.of_list [ ("transpose_b", Attrs.Bool true) ]
    else Attrs.empty
  in
  simple ?name ~attrs t Matmul [ a; b ]
let conv2d ?name ?strides ?pads ?dilations t x w =
  let attrs =
    List.concat
      [
        (match strides with
        | Some (sh, sw) -> [ ("strides", Attrs.Ints [ sh; sw ]) ]
        | None -> []);
        (match pads with
        | Some (pt, pl, pb, pr) -> [ ("pads", Attrs.Ints [ pt; pl; pb; pr ]) ]
        | None -> []);
        (match dilations with
        | Some (dh, dw) -> [ ("dilations", Attrs.Ints [ dh; dw ]) ]
        | None -> []);
      ]
    |> Attrs.of_list
  in
  simple ?name ~attrs t Conv2d [ x; w ]

let reshape ?name t ~shape a =
  simple ?name ~attrs:(Attrs.of_list [ ("shape", Attrs.Ints shape) ]) t Reshape
    [ a ]

let gather ?name t data indices = simple ?name t Gather [ data; indices ]

let add t a b = simple t Add [ a; b ]
let sub t a b = simple t Sub [ a; b ]
let mul t a b = simple t Mul [ a; b ]
let div t a b = simple t Div [ a; b ]
let maximum t a b = simple t Maximum [ a; b ]
let minimum t a b = simple t Minimum [ a; b ]
let relu t a = simple t Relu [ a ]
let exp t a = simple t Exp [ a ]
let tanh t a = simple t Tanh [ a ]
let sqrt t a = simple t Sqrt [ a ]
let neg t a = simple t Neg [ a ]
let abs t a = simple t Abs [ a ]
let reciprocal t a = simple t Reciprocal [ a ]
let round t a = simple t Round [ a ]

let clip t ~lo ~hi a =
  simple ~attrs:(Attrs.of_list [ ("lo", Attrs.Float lo); ("hi", Attrs.Float hi) ]) t Clip [ a ]

let cast t dtype (a : Logical_tensor.t) =
  let out = Logical_tensor.create ~dims:a.dims dtype a.shape in
  push t (Op.create Cast ~inputs:[ a ] ~outputs:[ out ])

let reorder t layout (a : Logical_tensor.t) =
  let out = Logical_tensor.create ~layout ~dims:a.dims a.dtype a.shape in
  push t (Op.create Reorder ~inputs:[ a ] ~outputs:[ out ])

let transpose t ~perm a =
  simple ~attrs:(Attrs.of_list [ ("perm", Attrs.Ints perm) ]) t Transpose [ a ]

let broadcast t shape (a : Logical_tensor.t) =
  (match Shape.broadcast a.shape shape with
  | Some s when Shape.equal s shape -> ()
  | _ ->
      Gc_errors.invalid_input
        ~ctx:
          [
            ("from", Shape.to_string a.shape); ("to", Shape.to_string shape);
          ]
        (Printf.sprintf "Builder.broadcast: %s does not broadcast to %s"
           (Shape.to_string a.shape) (Shape.to_string shape)));
  let out = Logical_tensor.create a.dtype shape in
  push t (Op.create Broadcast ~inputs:[ a ] ~outputs:[ out ])

let reduce t kind ~axis ~keepdims a =
  simple
    ~attrs:(Attrs.of_list [ ("axis", Attrs.Int axis); ("keepdims", Attrs.Bool keepdims) ])
    t (Reduce kind) [ a ]

let gelu ?(approximate = true) t a =
  simple ~attrs:(Attrs.of_list [ ("approximate", Attrs.Bool approximate) ]) t Gelu [ a ]

let sigmoid t a = simple t Sigmoid [ a ]

let softmax t ~axis a =
  simple ~attrs:(Attrs.of_list [ ("axis", Attrs.Int axis) ]) t Softmax [ a ]

let bias_add t x bias = simple t Bias_add [ x; bias ]

let batchnorm_inference t ~epsilon ~x ~gamma ~beta ~mean ~variance =
  simple
    ~attrs:(Attrs.of_list [ ("epsilon", Attrs.Float epsilon) ])
    t Batchnorm_inference
    [ x; gamma; beta; mean; variance ]

let layernorm t ~epsilon ~x ~gamma ~beta =
  simple
    ~attrs:(Attrs.of_list [ ("epsilon", Attrs.Float epsilon) ])
    t Layernorm [ x; gamma; beta ]

let quantize t ~scale ~zp dtype (a : Logical_tensor.t) =
  if not Dtype.(equal dtype S8 || equal dtype U8) then
    Gc_errors.invalid_input
      ~ctx:[ ("dtype", Dtype.to_string dtype) ]
      "Builder.quantize: output dtype must be s8/u8";
  let attrs = Attrs.of_list [ ("scale", Attrs.Float scale); ("zp", Attrs.Int zp) ] in
  let out = Logical_tensor.create ~dims:a.dims dtype a.shape in
  push t (Op.create Quantize ~attrs ~inputs:[ a ] ~outputs:[ out ])

let dequantize t ~scale ~zp (a : Logical_tensor.t) =
  let attrs = Attrs.of_list [ ("scale", Attrs.Float scale); ("zp", Attrs.Int zp) ] in
  let out = Logical_tensor.create ~dims:a.dims Dtype.F32 a.shape in
  push t (Op.create Dequantize ~attrs ~inputs:[ a ] ~outputs:[ out ])

let finalize t ~outputs =
  let g = Graph.create ~inputs:(List.rev t.inputs) ~outputs (List.rev t.ops) in
  match Graph.verify g with
  | Ok () -> (
      match Graph.topo_sort g with
      | Ok g -> g
      | Error e -> Gc_errors.invalid_input ("Builder.finalize: " ^ e))
  | Error e -> Gc_errors.invalid_input ("Builder.finalize: " ^ e)
