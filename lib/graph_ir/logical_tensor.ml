open Gc_tensor

type property = Variable | Runtime_const | Compile_const of Tensor.t

type t = {
  id : int;
  name : string;
  dtype : Dtype.t;
  shape : Shape.t;
  dims : Dim.dims;
  mutable layout : Layout.t;
  mutable property : property;
}

let counter = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add counter 1

let create ?name ?(layout = Layout.Plain) ?(property = Variable) ?dims dtype
    shape =
  let id = fresh_id () in
  let name = match name with Some n -> n | None -> Printf.sprintf "t%d" id in
  let dims = match dims with Some d -> d | None -> Dim.of_shape shape in
  if not (Dim.consistent dims shape) then
    Gc_errors.invalid_input
      ~ctx:
        [ ("shape", Shape.to_string shape); ("dims", Dim.dims_to_string dims) ]
      (Printf.sprintf "Logical_tensor.create %s: dims %s inconsistent with shape %s"
         name (Dim.dims_to_string dims) (Shape.to_string shape));
  { id; name; dtype; shape; dims; layout; property }

let const ?name tensor =
  create ?name
    ~layout:(Tensor.layout tensor)
    ~property:(Compile_const tensor) (Tensor.dtype tensor) (Tensor.shape tensor)

let like ?name ?dtype ?shape ?layout ?dims t =
  let shape' = Option.value shape ~default:t.shape in
  let dims =
    match dims with
    | Some d -> d
    | None -> (
        (* keep symbolic dims only when the shape is unchanged *)
        match shape with Some _ -> Dim.of_shape shape' | None -> t.dims)
  in
  create
    ~name:(match name with Some n -> n | None -> t.name)
    ~layout:(Option.value layout ~default:t.layout)
    ~dims
    (Option.value dtype ~default:t.dtype)
    shape'

let is_symbolic t = Dim.has_sym t.dims

let is_constant t =
  match t.property with Runtime_const | Compile_const _ -> true | Variable -> false

let is_compile_const t =
  match t.property with Compile_const _ -> true | _ -> false

let const_value t =
  match t.property with Compile_const v -> Some v | _ -> None

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp fmt t =
  let prop =
    match t.property with
    | Variable -> ""
    | Runtime_const -> " const@runtime"
    | Compile_const _ -> " const"
  in
  let dims = if Dim.has_sym t.dims then Dim.dims_to_string t.dims else "" in
  Format.fprintf fmt "%%%s:%a%a%s%s%s" t.name Dtype.pp t.dtype Shape.pp t.shape
    dims
    (if Layout.is_plain t.layout then "" else ":" ^ Layout.to_string t.layout)
    prop
