(** DNN operation kinds and their categories.

    The paper's taxonomy: {b Complex} OPs carry high-level framework
    semantics and are decomposed into basic ops; basic ops are either
    {b Tunable} (template-lowered compute-intensive ops — matmul) or
    {b Fusible} (element-wise, broadcast, reduction, data movement —
    fusable into a Tunable OP's anchors). *)

type reduce_kind = Sum | Max | Min | Mean

type t =
  (* Tunable *)
  | Matmul  (** batched matrix multiply over the last two dimensions *)
  | Conv2d
      (** 2-D convolution, NHWC activations × HWIO weights. Attrs:
          "strides" [sh; sw], "pads" [pt; pl; pb; pr] (asymmetric),
          "dilations" [dh; dw] — all optional, defaulting to unit
          stride/dilation and zero padding. Lowered by im2col folded into
          the BRGEMM template's A-packing anchor. *)
  (* Fusible: elementwise binary (NumPy broadcast) *)
  | Add
  | Sub
  | Mul
  | Div
  | Maximum
  | Minimum
  (* Fusible: elementwise unary *)
  | Relu
  | Exp
  | Tanh
  | Sqrt
  | Neg
  | Abs
  | Reciprocal
  | Round
  | Clip  (** attrs: "lo", "hi" (floats) *)
  (* Fusible: type and data movement *)
  | Cast  (** target dtype is the output logical tensor's dtype *)
  | Reorder  (** target layout is the output logical tensor's layout *)
  | Transpose  (** attr: "perm" (ints) *)
  | Broadcast  (** broadcast input to the output logical tensor's shape *)
  | Reshape
      (** attr: "shape" (ints) — row-major flat reinterpretation; the
          element count must be preserved *)
  | Gather
      (** inputs: data, indices (integer dtype); gathers rows of [data]
          along axis 0: output shape = indices.shape @ data.shape[1:] *)
  (* Fusible: reduction *)
  | Reduce of reduce_kind  (** attrs: "axis" (int), "keepdims" (bool) *)
  (* Complex: decomposed by the first Graph IR pass *)
  | Gelu  (** attr: "approximate" (bool, default true → tanh form) *)
  | Sigmoid
  | Softmax  (** attr: "axis" (int) *)
  | Batchnorm_inference  (** inputs: x, gamma, beta, mean, variance; attr "epsilon" *)
  | Layernorm
      (** inputs: x, gamma, beta (over the last axis); attr "epsilon" *)
  | Bias_add  (** inputs: x, bias (1-D over last axis) *)
  | Quantize  (** attrs: "scale" (float), "zp" (int); output dtype u8/s8 *)
  | Dequantize  (** attrs: "scale" (float), "zp" (int); output f32 *)

type category =
  | Tunable
  | Fusible of fusible_class
  | Complex

and fusible_class = Eltwise_unary | Eltwise_binary | Movement | Reduction

val category : t -> category
val is_tunable : t -> bool
val is_fusible : t -> bool
val is_complex : t -> bool

(** Number of data inputs the op expects ([None] = variadic). *)
val arity : t -> int option

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Every kind, for exhaustive tests. *)
val all : t list
