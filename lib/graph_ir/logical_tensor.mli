open Gc_tensor

(** Logical tensors: the metadata edges of the Graph IR — dtype, shape,
    memory layout and constness. A logical tensor does not own data unless
    it is a compile-time constant.

    The [property] field implements the paper's constant classification:
    - [Variable]: ordinary runtime data;
    - [Runtime_const]: the buffer is constant from the first execution on
      (e.g. weights); the constant-weight-preprocessing pass marks these
      and moves their producers into the init function;
    - [Compile_const]: the value is known at compile time (attributes,
      folded scales/zero-points) and carries its tensor.

    The [dims] vector mirrors [shape] axis-by-axis but may mark axes
    symbolic ({!Dim.Sym}) for shape-polymorphic compilation; [shape] is
    then the representative instantiation. Invariant: [Dim.consistent
    dims shape] always holds. *)

type property =
  | Variable
  | Runtime_const
  | Compile_const of Tensor.t

type t = {
  id : int;
  name : string;
  dtype : Dtype.t;
  shape : Shape.t;
  dims : Dim.dims;
  mutable layout : Layout.t;
  mutable property : property;
}

(** [create ?name ?layout ?property ?dims dtype shape] makes a fresh
    logical tensor with a unique id. [dims] defaults to all-[Fixed] from
    [shape]; raises [Gc_errors] invalid-input when [dims] is inconsistent
    with [shape]. *)
val create :
  ?name:string ->
  ?layout:Layout.t ->
  ?property:property ->
  ?dims:Dim.dims ->
  Dtype.t ->
  Shape.t ->
  t

(** A compile-time constant wrapping [tensor]. *)
val const : ?name:string -> Tensor.t -> t

(** Fresh tensor with the same metadata (new id). Passing [shape] without
    [dims] resets dims to all-[Fixed]; omitting both keeps symbolic dims. *)
val like :
  ?name:string ->
  ?dtype:Dtype.t ->
  ?shape:Shape.t ->
  ?layout:Layout.t ->
  ?dims:Dim.dims ->
  t ->
  t

val is_symbolic : t -> bool  (** any [Sym] axis *)

val is_constant : t -> bool  (** runtime or compile-time constant *)

val is_compile_const : t -> bool
val const_value : t -> Tensor.t option
val equal : t -> t -> bool  (** by id *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
