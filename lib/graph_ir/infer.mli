open Gc_tensor

(** Shape/dtype inference and per-op validity checking. *)

(** [infer_shape kind attrs inputs] computes the output shape for ops whose
    shape is derivable from the inputs ([Error] for ill-formed input
    combinations). For [Cast]/[Quantize]/[Dequantize] the shape is the
    input's; for [Broadcast]/[Reorder] the caller declares the output and
    {!check} validates it. *)
val infer_shape :
  Op_kind.t -> Attrs.t -> Logical_tensor.t list -> (Shape.t, string) result

(** Best-effort symbolic dims for an op's output, given the concrete
    output shape already produced by {!infer_shape}. Total: any case that
    cannot be propagated symbolically (unknown op, non-unifiable broadcast,
    reshape whose wildcard is not a pure symbol) falls back to all-[Fixed]
    dims of the concrete shape. The result is always [Dim.consistent] with
    the given shape. *)
val infer_dims :
  Op_kind.t -> Attrs.t -> Logical_tensor.t list -> Shape.t -> Dim.dims

(** Default output dtype for a kind given its inputs (e.g. matmul over
    int8 → s32, eltwise promotion). [None] when the kind's output dtype is
    declaration-driven (Cast, Quantize). *)
val infer_dtype : Op_kind.t -> Logical_tensor.t list -> Dtype.t option

(** Conv2d attributes with defaults applied:
    [((sh, sw), (pt, pl, pb, pr), (dh, dw))]. Shared by shape inference,
    the reference convolution, and the im2col lowering so the three can
    never disagree on defaults. *)
val conv_attrs :
  Attrs.t ->
  ((int * int) * (int * int * int * int) * (int * int), string) result

(** Validate an op's declared outputs against its inputs and attributes. *)
val check : Op.t -> (unit, string) result
