open Gc_tensor

type t = Fixed of int | Sym of string

let fixed n =
  if n <= 0 then invalid_arg "Dim.fixed: dims must be positive";
  Fixed n

let sym s =
  if String.length s = 0 then invalid_arg "Dim.sym: empty symbol";
  Sym s

let is_sym = function Sym _ -> true | Fixed _ -> false
let value = function Fixed n -> Some n | Sym _ -> None

let equal a b =
  match (a, b) with
  | Fixed a, Fixed b -> a = b
  | Sym a, Sym b -> String.equal a b
  | _ -> false

let to_string = function Fixed n -> string_of_int n | Sym s -> "$" ^ s
let pp fmt d = Format.pp_print_string fmt (to_string d)

type dims = t array

let of_shape s = Array.map (fun n -> Fixed n) (Shape.to_array s)

let dims_equal a b =
  Array.length a = Array.length b && Array.for_all2 equal a b

let dims_to_string d =
  "[" ^ String.concat "x" (Array.to_list (Array.map to_string d)) ^ "]"

let has_sym d = Array.exists is_sym d

let syms d =
  Array.fold_left
    (fun acc dim ->
      match dim with
      | Sym s when not (List.mem s acc) -> s :: acc
      | _ -> acc)
    [] d
  |> List.rev

let eval ~env d =
  let missing = ref None in
  let resolved =
    Array.map
      (fun dim ->
        match dim with
        | Fixed n -> n
        | Sym s -> (
            match List.assoc_opt s env with
            | Some n when n > 0 -> n
            | Some n ->
                if !missing = None then
                  missing :=
                    Some (Printf.sprintf "symbol %s bound to non-positive %d" s n);
                0
            | None ->
                if !missing = None then
                  missing := Some (Printf.sprintf "unbound symbol %s" s);
                0))
      d
  in
  match !missing with
  | Some msg -> Error msg
  | None -> Ok (Shape.of_array resolved)

let consistent d (shape : Shape.t) =
  Array.length d = Shape.rank shape
  && Array.for_all2
       (fun dim n -> match dim with Fixed f -> f = n | Sym _ -> n > 0)
       d (Shape.to_array shape)

(* Symbolic broadcast of two dims vectors (numpy alignment). [None] when
   the pair cannot be unified symbolically — callers fall back to the
   concrete inferred shape, which is always sound (it merely loses
   polymorphism for that edge). *)
let broadcast2 a b =
  let ra = Array.length a and rb = Array.length b in
  let r = max ra rb in
  let get v rv i = if i < r - rv then None else Some v.(i - (r - rv)) in
  let out = Array.make r (Fixed 1) in
  let ok = ref true in
  for i = 0 to r - 1 do
    let unified =
      match (get a ra i, get b rb i) with
      | None, Some d | Some d, None -> Some d
      | None, None -> Some (Fixed 1)
      | Some (Fixed 1), Some d | Some d, Some (Fixed 1) -> Some d
      | Some (Fixed x), Some (Fixed y) when x = y -> Some (Fixed x)
      | Some (Sym x), Some (Sym y) when String.equal x y -> Some (Sym x)
      | _ -> None
    in
    match unified with Some d -> out.(i) <- d | None -> ok := false
  done;
  if !ok then Some out else None
