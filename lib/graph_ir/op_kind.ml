type reduce_kind = Sum | Max | Min | Mean

type t =
  | Matmul
  | Conv2d
  | Add
  | Sub
  | Mul
  | Div
  | Maximum
  | Minimum
  | Relu
  | Exp
  | Tanh
  | Sqrt
  | Neg
  | Abs
  | Reciprocal
  | Round
  | Clip
  | Cast
  | Reorder
  | Transpose
  | Broadcast
  | Reshape
  | Gather
  | Reduce of reduce_kind
  | Gelu
  | Sigmoid
  | Softmax
  | Batchnorm_inference
  | Layernorm
  | Bias_add
  | Quantize
  | Dequantize

type category = Tunable | Fusible of fusible_class | Complex
and fusible_class = Eltwise_unary | Eltwise_binary | Movement | Reduction

let category = function
  | Matmul | Conv2d -> Tunable
  | Add | Sub | Mul | Div | Maximum | Minimum -> Fusible Eltwise_binary
  | Relu | Exp | Tanh | Sqrt | Neg | Abs | Reciprocal | Round | Clip | Cast ->
      Fusible Eltwise_unary
  | Reorder | Transpose | Broadcast | Reshape | Gather -> Fusible Movement
  | Reduce _ -> Fusible Reduction
  | Gelu | Sigmoid | Softmax | Batchnorm_inference | Layernorm | Bias_add
  | Quantize | Dequantize ->
      Complex

let is_tunable k = category k = Tunable
let is_fusible k = match category k with Fusible _ -> true | _ -> false
let is_complex k = category k = Complex

let arity = function
  | Matmul | Conv2d | Gather | Add | Sub | Mul | Div | Maximum | Minimum
  | Bias_add ->
      Some 2
  | Relu | Exp | Tanh | Sqrt | Neg | Abs | Reciprocal | Round | Clip | Cast
  | Reorder | Transpose | Broadcast | Reshape | Reduce _ | Gelu | Sigmoid
  | Softmax | Quantize | Dequantize ->
      Some 1
  | Batchnorm_inference -> Some 5
  | Layernorm -> Some 3

let equal (a : t) (b : t) = a = b

let reduce_kind_to_string = function
  | Sum -> "sum"
  | Max -> "max"
  | Min -> "min"
  | Mean -> "mean"

let to_string = function
  | Matmul -> "matmul"
  | Conv2d -> "conv2d"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Maximum -> "maximum"
  | Minimum -> "minimum"
  | Relu -> "relu"
  | Exp -> "exp"
  | Tanh -> "tanh"
  | Sqrt -> "sqrt"
  | Neg -> "neg"
  | Abs -> "abs"
  | Reciprocal -> "reciprocal"
  | Round -> "round"
  | Clip -> "clip"
  | Cast -> "cast"
  | Reorder -> "reorder"
  | Transpose -> "transpose"
  | Broadcast -> "broadcast"
  | Reshape -> "reshape"
  | Gather -> "gather"
  | Reduce k -> "reduce_" ^ reduce_kind_to_string k
  | Gelu -> "gelu"
  | Sigmoid -> "sigmoid"
  | Softmax -> "softmax"
  | Batchnorm_inference -> "batchnorm_inference"
  | Layernorm -> "layernorm"
  | Bias_add -> "bias_add"
  | Quantize -> "quantize"
  | Dequantize -> "dequantize"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all =
  [
    Matmul; Conv2d; Add; Sub; Mul; Div; Maximum; Minimum; Relu; Exp; Tanh; Neg;
    Sqrt; Abs; Reciprocal; Round; Clip; Cast; Reorder; Transpose; Broadcast;
    Reshape; Gather; Reduce Sum; Reduce Max; Reduce Min; Reduce Mean; Gelu;
    Sigmoid; Softmax; Batchnorm_inference; Layernorm; Bias_add; Quantize;
    Dequantize;
  ]
