type t = {
  ops : Op.t list;
  inputs : Logical_tensor.t list;
  outputs : Logical_tensor.t list;
}

let create ~inputs ~outputs ops = { ops; inputs; outputs }

let producer t (lt : Logical_tensor.t) =
  List.find_opt
    (fun (op : Op.t) -> List.exists (fun o -> Logical_tensor.equal o lt) op.outputs)
    t.ops

let consumers t (lt : Logical_tensor.t) =
  List.filter
    (fun (op : Op.t) -> List.exists (fun i -> Logical_tensor.equal i lt) op.inputs)
    t.ops

let is_output t lt = List.exists (Logical_tensor.equal lt) t.outputs

let all_tensors t =
  let tbl = Hashtbl.create 64 in
  let add (lt : Logical_tensor.t) =
    if not (Hashtbl.mem tbl lt.id) then Hashtbl.add tbl lt.id lt
  in
  List.iter add t.inputs;
  List.iter
    (fun (op : Op.t) ->
      List.iter add op.inputs;
      List.iter add op.outputs)
    t.ops;
  List.iter add t.outputs;
  Hashtbl.fold (fun _ lt acc -> lt :: acc) tbl []
  |> List.sort Logical_tensor.compare

let available_initially t =
  let tbl = Hashtbl.create 16 in
  let produced = Hashtbl.create 16 in
  List.iter
    (fun (op : Op.t) ->
      List.iter
        (fun (o : Logical_tensor.t) -> Hashtbl.replace produced o.id ())
        op.outputs)
    t.ops;
  List.iter (fun (lt : Logical_tensor.t) -> Hashtbl.replace tbl lt.id ()) t.inputs;
  List.iter
    (fun (lt : Logical_tensor.t) ->
      (* compile-time constants carry their value; runtime constants with
         no in-graph producer are materialized by the init function *)
      if
        Logical_tensor.is_compile_const lt
        || (Logical_tensor.is_constant lt && not (Hashtbl.mem produced lt.id))
      then Hashtbl.replace tbl lt.id ())
    (all_tensors t);
  tbl

let topo_sort t =
  let ready = available_initially t in
  let remaining = ref t.ops in
  let sorted = ref [] in
  let progress = ref true in
  while !progress && !remaining <> [] do
    progress := false;
    let still = ref [] in
    List.iter
      (fun (op : Op.t) ->
        let inputs_ready =
          List.for_all (fun (i : Logical_tensor.t) -> Hashtbl.mem ready i.id) op.inputs
        in
        if inputs_ready then begin
          List.iter (fun (o : Logical_tensor.t) -> Hashtbl.replace ready o.id ()) op.outputs;
          sorted := op :: !sorted;
          progress := true
        end
        else still := op :: !still)
      !remaining;
    remaining := List.rev !still
  done;
  if !remaining <> [] then
    Error
      (Printf.sprintf "topo_sort: cycle or unresolved inputs involving ops: %s"
         (String.concat ", " (List.map (fun (o : Op.t) -> o.name) !remaining)))
  else Ok { t with ops = List.rev !sorted }

let verify t =
  (* unique producers *)
  let producers = Hashtbl.create 64 in
  let dup =
    List.find_map
      (fun (op : Op.t) ->
        List.find_map
          (fun (o : Logical_tensor.t) ->
            if Hashtbl.mem producers o.id then
              Some (Printf.sprintf "tensor %s has multiple producers" o.name)
            else begin
              Hashtbl.add producers o.id op;
              None
            end)
          op.outputs)
      t.ops
  in
  match dup with
  | Some msg -> Error msg
  | None -> (
      match topo_sort t with
      | Error e -> Error e
      | Ok sorted -> (
          (* outputs must be available *)
          let avail = available_initially t in
          List.iter
            (fun (op : Op.t) ->
              List.iter
                (fun (o : Logical_tensor.t) -> Hashtbl.replace avail o.id ())
                op.outputs)
            t.ops;
          let missing_out =
            List.find_opt
              (fun (o : Logical_tensor.t) -> not (Hashtbl.mem avail o.id))
              t.outputs
          in
          match missing_out with
          | Some o ->
              Error (Printf.sprintf "graph output %s is never produced" o.name)
          | None ->
              List.fold_left
                (fun acc op ->
                  match acc with
                  | Error _ -> acc
                  | Ok () -> Infer.check op)
                (Ok ()) sorted.ops))

let replace_ops t ~remove ~add =
  let removed_ids = List.map (fun (o : Op.t) -> o.id) remove in
  let kept = List.filter (fun (o : Op.t) -> not (List.mem o.id removed_ids)) t.ops in
  let g = { t with ops = kept @ add } in
  match topo_sort g with
  | Ok g -> g
  | Error e -> invalid_arg ("Graph.replace_ops: " ^ e)

let map_ops f t = { t with ops = List.map f t.ops }

let clone t =
  let map : (int, Logical_tensor.t) Hashtbl.t = Hashtbl.create 64 in
  let clone_lt (lt : Logical_tensor.t) =
    match Hashtbl.find_opt map lt.id with
    | Some lt' -> lt'
    | None ->
        let lt' =
          Logical_tensor.create ~name:lt.name ~layout:lt.layout
            ~property:lt.property ~dims:lt.dims lt.dtype lt.shape
        in
        Hashtbl.add map lt.id lt';
        lt'
  in
  let clone_op (op : Op.t) =
    Op.create ~name:op.name ~attrs:op.attrs op.kind
      ~inputs:(List.map clone_lt op.inputs)
      ~outputs:(List.map clone_lt op.outputs)
  in
  let g =
    {
      ops = List.map clone_op t.ops;
      inputs = List.map clone_lt t.inputs;
      outputs = List.map clone_lt t.outputs;
    }
  in
  (g, map)

let syms t =
  List.fold_left
    (fun acc (lt : Logical_tensor.t) ->
      List.fold_left
        (fun acc s -> if List.mem s acc then acc else s :: acc)
        acc (Dim.syms lt.dims))
    []
    (all_tensors t)
  |> List.rev

let substitute ~env t =
  let map : (int, Logical_tensor.t) Hashtbl.t = Hashtbl.create 64 in
  let failure = ref None in
  let subst_lt (lt : Logical_tensor.t) =
    match Hashtbl.find_opt map lt.id with
    | Some lt' -> lt'
    | None ->
        let lt' =
          if Dim.has_sym lt.dims then begin
            match Dim.eval ~env lt.dims with
            | Ok shape ->
                Logical_tensor.create ~name:lt.name ~layout:lt.layout
                  ~property:lt.property lt.dtype shape
            | Error e ->
                if !failure = None then
                  failure :=
                    Some (Printf.sprintf "tensor %s: %s" lt.name e);
                (* placeholder; the error is reported below *)
                Logical_tensor.create ~name:lt.name ~layout:lt.layout
                  ~property:lt.property lt.dtype lt.shape
          end
          else
            Logical_tensor.create ~name:lt.name ~layout:lt.layout
              ~property:lt.property ~dims:lt.dims lt.dtype lt.shape
        in
        Hashtbl.add map lt.id lt';
        lt'
  in
  let subst_op (op : Op.t) =
    Op.create ~name:op.name ~attrs:op.attrs op.kind
      ~inputs:(List.map subst_lt op.inputs)
      ~outputs:(List.map subst_lt op.outputs)
  in
  let g =
    {
      ops = List.map subst_op t.ops;
      inputs = List.map subst_lt t.inputs;
      outputs = List.map subst_lt t.outputs;
    }
  in
  match !failure with
  | Some e -> Error (Printf.sprintf "Graph.substitute: %s" e)
  | None -> (
      match verify g with
      | Ok () -> Ok (g, map)
      | Error e -> Error (Printf.sprintf "Graph.substitute: %s" e))

let op_count t = List.length t.ops

let pp fmt t =
  Format.fprintf fmt "@[<v>graph(%a) -> (%a) {@,"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Logical_tensor.pp)
    t.inputs
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ", ")
       (fun f (lt : Logical_tensor.t) -> Format.pp_print_string f lt.name))
    t.outputs;
  List.iter (fun op -> Format.fprintf fmt "  %a@," Op.pp op) t.ops;
  Format.fprintf fmt "}@]"

let to_string t = Format.asprintf "%a" pp t

let to_dot t =
  let buf = Stdlib.Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Stdlib.Buffer.add_string buf) fmt in
  pr "digraph g {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun (lt : Logical_tensor.t) ->
      pr "  t%d [shape=ellipse, label=\"%s\\n%s %s\"];\n" lt.id lt.name
        (Gc_tensor.Dtype.to_string lt.dtype)
        (Gc_tensor.Shape.to_string lt.shape))
    t.inputs;
  List.iter
    (fun (op : Op.t) ->
      pr "  op%d [label=\"%s\"];\n" op.id (Op_kind.to_string op.kind);
      List.iter
        (fun (i : Logical_tensor.t) ->
          match producer t i with
          | Some p ->
              pr "  op%d -> op%d [label=\"%s\"];\n" p.id op.id
                (Gc_tensor.Shape.to_string i.shape)
          | None ->
              let style =
                if Logical_tensor.is_constant i then " style=dashed" else ""
              in
              if List.exists (Logical_tensor.equal i) t.inputs then
                pr "  t%d -> op%d [label=\"%s\"%s];\n" i.id op.id
                  (Gc_tensor.Shape.to_string i.shape) style
              else begin
                pr "  c%d [shape=ellipse, style=dashed, label=\"%s\"];\n" i.id
                  i.name;
                pr "  c%d -> op%d%s;\n" i.id op.id
                  (if style = "" then "" else " [style=dashed]")
              end)
        op.inputs)
    t.ops;
  List.iter
    (fun (o : Logical_tensor.t) ->
      pr "  out%d [shape=ellipse, peripheries=2, label=\"%s\"];\n" o.id o.name;
      match producer t o with
      | Some p -> pr "  op%d -> out%d;\n" p.id o.id
      | None -> ())
    t.outputs;
  pr "}\n";
  Stdlib.Buffer.contents buf
