(** The DNN computation graph: a set of ops over logical tensors, with
    declared graph inputs and outputs. Graphs are immutable; passes build
    rewritten copies. *)

type t = {
  ops : Op.t list;  (** in topological order once {!topo_sort}ed *)
  inputs : Logical_tensor.t list;
  outputs : Logical_tensor.t list;
}

val create :
  inputs:Logical_tensor.t list -> outputs:Logical_tensor.t list -> Op.t list -> t

(** Producer of a logical tensor inside this graph ([None] for graph inputs
    and constants). *)
val producer : t -> Logical_tensor.t -> Op.t option

(** Ops consuming a logical tensor. *)
val consumers : t -> Logical_tensor.t -> Op.t list

(** Is this tensor a graph output? *)
val is_output : t -> Logical_tensor.t -> bool

(** Every logical tensor mentioned by the graph (inputs, outputs, and all
    op edges), deduplicated by id. *)
val all_tensors : t -> Logical_tensor.t list

(** Kahn topological sort of the ops. [Error] on a cycle or on an op input
    that is neither a graph input, a constant, nor produced in-graph. *)
val topo_sort : t -> (t, string) result

(** Full structural verification: unique producers, resolvable inputs,
    acyclicity, per-op shape/dtype checks, outputs produced. *)
val verify : t -> (unit, string) result

(** [replace_ops g ~remove ~add] removes the ops in [remove] (by id) and
    appends [add]; re-sorts topologically. Raises on a malformed result. *)
val replace_ops : t -> remove:Op.t list -> add:Op.t list -> t

(** [map_ops f g] rebuilds the graph with [f] applied to each op. *)
val map_ops : (Op.t -> Op.t) -> t -> t

(** [clone g] deep-copies the graph: every logical tensor and op is
    re-created (fresh ids; compile-time constant values are shared).
    Compilation mutates tensor metadata (layouts, constness), so each
    compilation works on its own clone. The returned table maps original
    tensor ids to their clones. *)
val clone : t -> t * (int, Logical_tensor.t) Hashtbl.t

(** Distinct symbolic dim names mentioned anywhere in the graph, in
    first-mention order (empty for fully concrete graphs). *)
val syms : t -> string list

(** [substitute ~env g] deep-copies the graph with every symbolic dim
    resolved through [env] (symbol name → concrete size); the result is
    fully concrete ([syms] = []) and re-verified, so an instantiation that
    breaks an op contract (e.g. a concrete reshape target that no longer
    matches) is an [Error], not a latent miscompile. The returned table
    maps original tensor ids to their substituted clones. *)
val substitute :
  env:(string * int) list ->
  t ->
  (t * (int, Logical_tensor.t) Hashtbl.t, string) result

val op_count : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Graphviz DOT rendering: ops as boxes, logical tensors as edges
    (constants dashed), for [dot -Tsvg]. *)
val to_dot : t -> string
