open Gc_tensor

(** Symbolic dimensions for shape-polymorphic compilation.

    A logical tensor's [dims] vector mirrors its concrete [shape] but may
    mark individual axes as symbolic ([Sym "b"] for a varying batch).
    Concrete shapes remain the representative instantiation used by the
    reference interpreter and the lowering pipeline; symbols only matter at
    the compilation boundary, where {!Graph.substitute} produces a fully
    concrete clone per shape-class bucket. This keeps the shape algebra in
    Graph IR and concrete dims at lowering, the split ONNX-MLIR and nGraph
    both converge on. *)

type t = Fixed of int | Sym of string

val fixed : int -> t
(** Raises [Invalid_argument] on non-positive sizes. *)

val sym : string -> t
(** Raises [Invalid_argument] on the empty string. *)

val is_sym : t -> bool
val value : t -> int option  (** [Some n] for [Fixed n]. *)

val equal : t -> t -> bool
val to_string : t -> string  (** [Fixed 8] → ["8"], [Sym "b"] → ["$b"]. *)

val pp : Format.formatter -> t -> unit

type dims = t array

val of_shape : Shape.t -> dims  (** All-[Fixed] dims from a concrete shape. *)

val dims_equal : dims -> dims -> bool
val dims_to_string : dims -> string
val has_sym : dims -> bool

val syms : dims -> string list
(** Distinct symbol names in first-mention order. *)

val eval : env:(string * int) list -> dims -> (Shape.t, string) result
(** Concretize under [env]; [Error] on unbound symbols or non-positive
    bindings. *)

val consistent : dims -> Shape.t -> bool
(** Rank matches and every [Fixed n] axis equals the concrete dim
    (symbolic axes accept any positive size). *)

val broadcast2 : dims -> dims -> dims option
(** Symbolic numpy-style broadcast. [None] when an axis pair cannot be
    unified symbolically (e.g. [Sym "b"] vs [Fixed 4]) — callers fall back
    to concrete dims for that edge, which is sound but monomorphic. *)
