open Gc_tensor

let ( let* ) = Result.bind

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let shape_of (lt : Logical_tensor.t) = lt.shape

let broadcast2 a b =
  match Shape.broadcast a b with
  | Some s -> Ok s
  | None ->
      err "shapes %s and %s do not broadcast" (Shape.to_string a)
        (Shape.to_string b)

let matmul_shape a b =
  if Shape.rank a < 2 || Shape.rank b < 2 then err "matmul inputs must have rank >= 2"
  else
    let ra = Shape.rank a and rb = Shape.rank b in
    let m = Shape.dim a (ra - 2)
    and ka = Shape.dim a (ra - 1)
    and kb = Shape.dim b (rb - 2)
    and n = Shape.dim b (rb - 1) in
    if ka <> kb then err "matmul inner dims mismatch: %d vs %d" ka kb
    else
      let* batch = broadcast2 (Shape.sub a 0 (ra - 2)) (Shape.sub b 0 (rb - 2)) in
      Ok (Shape.concat batch (Shape.of_list [ m; n ]))

(* Conv2d attribute accessors, shared with reference and lowering. *)
let conv_attrs attrs =
  let pair name default =
    match Attrs.get_ints attrs name with
    | Some [ a; b ] -> Ok (a, b)
    | None -> Ok default
    | Some _ -> err "conv2d: %s must have two entries" name
  in
  let* sh, sw = pair "strides" (1, 1) in
  let* dh, dw = pair "dilations" (1, 1) in
  let* pads =
    match Attrs.get_ints attrs "pads" with
    | Some [ pt; pl; pb; pr ] -> Ok (pt, pl, pb, pr)
    | None -> Ok (0, 0, 0, 0)
    | Some _ -> err "conv2d: pads must be [top; left; bottom; right]"
  in
  if sh <= 0 || sw <= 0 then err "conv2d: strides must be positive"
  else if dh <= 0 || dw <= 0 then err "conv2d: dilations must be positive"
  else
    let pt, pl, pb, pr = pads in
    if pt < 0 || pl < 0 || pb < 0 || pr < 0 then
      err "conv2d: pads must be non-negative"
    else Ok ((sh, sw), (pt, pl, pb, pr), (dh, dw))

let conv2d_shape attrs x w =
  if Shape.rank x <> 4 then err "conv2d: input must be NHWC (rank 4)"
  else if Shape.rank w <> 4 then err "conv2d: weights must be HWIO (rank 4)"
  else
    let n = Shape.dim x 0 and h = Shape.dim x 1 and iw = Shape.dim x 2
    and c = Shape.dim x 3 in
    let kh = Shape.dim w 0 and kw = Shape.dim w 1 and wc = Shape.dim w 2
    and oc = Shape.dim w 3 in
    if c <> wc then err "conv2d: channel mismatch: input %d vs weights %d" c wc
    else
      let* (sh, sw), (pt, pl, pb, pr), (dh, dw) = conv_attrs attrs in
      let keff_h = ((kh - 1) * dh) + 1 and keff_w = ((kw - 1) * dw) + 1 in
      let oh_num = h + pt + pb - keff_h and ow_num = iw + pl + pr - keff_w in
      if oh_num < 0 || ow_num < 0 then
        err "conv2d: effective kernel %dx%d exceeds padded input %dx%d" keff_h
          keff_w (h + pt + pb) (iw + pl + pr)
      else
        Ok (Shape.of_list [ n; (oh_num / sh) + 1; (ow_num / sw) + 1; oc ])

let reshape_shape attrs input =
  match Attrs.get_ints attrs "shape" with
  | None -> err "reshape: missing shape attribute"
  | Some dims ->
      let wilds = List.length (List.filter (fun d -> d = -1) dims) in
      if List.exists (fun d -> d <= 0 && d <> -1) dims then
        err "reshape: dims must be positive (or a single -1 wildcard)"
      else if wilds > 1 then err "reshape: at most one -1 wildcard"
      else if wilds = 1 then begin
        let known =
          List.fold_left (fun acc d -> if d = -1 then acc else acc * d) 1 dims
        in
        let total = Shape.numel input in
        if known <= 0 || total mod known <> 0 then
          err "reshape: cannot infer -1: %d elements not divisible by %d" total
            known
        else
          Ok (Shape.of_list (List.map (fun d -> if d = -1 then total / known else d) dims))
      end
      else
        let out = Shape.of_list dims in
        if Shape.numel out <> Shape.numel input then
          err "reshape: %s has %d elements, target %s has %d"
            (Shape.to_string input) (Shape.numel input) (Shape.to_string out)
            (Shape.numel out)
        else Ok out

let gather_shape data indices =
  if Shape.rank data < 1 then err "gather: data must have rank >= 1"
  else
    Ok (Shape.concat indices (Shape.sub data 1 (Shape.rank data)))

let reduce_shape attrs input =
  let rank = Shape.rank input in
  match Attrs.get_int attrs "axis" with
  | None -> err "reduce: missing axis attribute"
  | Some axis ->
      let axis = if axis < 0 then axis + rank else axis in
      if axis < 0 || axis >= rank then err "reduce: axis %d out of range" axis
      else
        let keepdims = Option.value (Attrs.get_bool attrs "keepdims") ~default:false in
        let dims = Shape.to_list input in
        let out =
          if keepdims then List.mapi (fun i d -> if i = axis then 1 else d) dims
          else List.filteri (fun i _ -> i <> axis) dims
        in
        Ok (Shape.of_list out)

let transpose_shape attrs input =
  match Attrs.get_ints attrs "perm" with
  | None -> err "transpose: missing perm attribute"
  | Some perm ->
      let rank = Shape.rank input in
      if List.length perm <> rank then err "transpose: perm length mismatch"
      else if List.sort compare perm <> List.init rank Fun.id then
        err "transpose: perm is not a permutation"
      else Ok (Shape.of_list (List.map (Shape.dim input) perm))

let swap_last2 s =
  let r = Shape.rank s in
  let a = Shape.to_array s in
  let t = a.(r - 2) in
  a.(r - 2) <- a.(r - 1);
  a.(r - 1) <- t;
  Shape.of_array a

let infer_shape kind attrs (inputs : Logical_tensor.t list) =
  match ((kind : Op_kind.t), List.map shape_of inputs) with
  | Matmul, [ a; b ] ->
      let b =
        if Option.value (Attrs.get_bool attrs "transpose_b") ~default:false
        then swap_last2 b
        else b
      in
      matmul_shape a b
  | Conv2d, [ x; w ] -> conv2d_shape attrs x w
  | Reshape, [ a ] -> reshape_shape attrs a
  | Gather, [ data; indices ] -> gather_shape data indices
  | (Add | Sub | Mul | Div | Maximum | Minimum), [ a; b ] -> broadcast2 a b
  | ( ( Relu | Exp | Tanh | Sqrt | Neg | Abs | Reciprocal | Round | Clip | Cast
      | Gelu | Sigmoid | Softmax | Quantize | Dequantize | Reorder ),
      [ a ] ) ->
      Ok a
  | Transpose, [ a ] -> transpose_shape attrs a
  | Reduce _, [ a ] -> reduce_shape attrs a
  | Broadcast, [ a ] -> Ok a (* declaration-driven; checked against output *)
  | Bias_add, [ x; bias ] ->
      if Shape.rank bias <> 1 then err "bias_add: bias must be rank 1"
      else if Shape.dim bias 0 <> Shape.dim x (Shape.rank x - 1) then
        err "bias_add: bias size %d does not match last dim %d"
          (Shape.dim bias 0)
          (Shape.dim x (Shape.rank x - 1))
      else Ok x
  | Batchnorm_inference, [ x; _; _; _; _ ] -> Ok x
  | Layernorm, [ x; gamma; beta ] ->
      let last = Shape.dim x (Shape.rank x - 1) in
      if Shape.rank gamma <> 1 || Shape.dim gamma 0 <> last then
        err "layernorm: gamma must be [%d]" last
      else if Shape.rank beta <> 1 || Shape.dim beta 0 <> last then
        err "layernorm: beta must be [%d]" last
      else Ok x
  | k, inputs ->
      err "%s: unexpected input count %d" (Op_kind.to_string k)
        (List.length inputs)

(* Symbolic dims propagation. Total: any case that cannot be propagated
   symbolically falls back to all-[Fixed] dims from the concrete inferred
   output shape — sound, the edge just loses polymorphism. [out_shape] is
   the concrete shape already produced by {!infer_shape}. *)
let infer_dims kind attrs (inputs : Logical_tensor.t list) (out_shape : Shape.t)
    : Dim.dims =
  let fallback = Dim.of_shape out_shape in
  let dims_of (lt : Logical_tensor.t) = lt.Logical_tensor.dims in
  let result =
    match ((kind : Op_kind.t), List.map dims_of inputs) with
    | Matmul, [ a; b ] ->
        let b =
          if Option.value (Attrs.get_bool attrs "transpose_b") ~default:false
          then begin
            let b = Array.copy b in
            let r = Array.length b in
            let t = b.(r - 2) in
            b.(r - 2) <- b.(r - 1);
            b.(r - 1) <- t;
            b
          end
          else b
        in
        let ra = Array.length a and rb = Array.length b in
        if ra < 2 || rb < 2 then fallback
        else begin
          match
            Dim.broadcast2 (Array.sub a 0 (ra - 2)) (Array.sub b 0 (rb - 2))
          with
          | Some batch -> Array.concat [ batch; [| a.(ra - 2); b.(rb - 1) |] ]
          | None -> fallback
        end
    | Conv2d, [ x; _ ] when Array.length x = 4 && Shape.rank out_shape = 4 ->
        (* batch passes through; spatial/channel dims are kernel-dependent *)
        [|
          x.(0);
          Dim.Fixed (Shape.dim out_shape 1);
          Dim.Fixed (Shape.dim out_shape 2);
          Dim.Fixed (Shape.dim out_shape 3);
        |]
    | Reshape, [ a ] -> (
        (* A -1 wildcard inherits the input's single symbolic axis when the
           fixed-element products on both sides agree: numel = s * P_in and
           the wildcard resolves to s * (P_in / P_out), a pure symbol only
           when P_in = P_out. *)
        match Attrs.get_ints attrs "shape" with
        | Some target when List.mem (-1) target -> (
            let n_sym =
              Array.fold_left
                (fun n d -> if Dim.is_sym d then n + 1 else n)
                0 a
            in
            match (Dim.syms a, n_sym) with
            | [ s ], 1 ->
                let p_in =
                  Array.fold_left
                    (fun p d -> match d with Dim.Fixed n -> p * n | _ -> p)
                    1 a
                in
                let p_out =
                  List.fold_left (fun p d -> if d > 0 then p * d else p) 1 target
                in
                if p_in = p_out then
                  Array.of_list
                    (List.map
                       (fun d -> if d = -1 then Dim.Sym s else Dim.Fixed d)
                       target)
                else fallback
            | _ -> fallback)
        | _ -> fallback)
    | Gather, [ data; indices ] when Array.length data >= 1 ->
        Array.append indices (Array.sub data 1 (Array.length data - 1))
    | (Add | Sub | Mul | Div | Maximum | Minimum), [ a; b ] -> (
        match Dim.broadcast2 a b with Some d -> d | None -> fallback)
    | ( ( Relu | Exp | Tanh | Sqrt | Neg | Abs | Reciprocal | Round | Clip
        | Cast | Gelu | Sigmoid | Softmax | Quantize | Dequantize | Reorder ),
        [ a ] ) ->
        a
    | Transpose, [ a ] -> (
        match Attrs.get_ints attrs "perm" with
        | Some perm
          when List.length perm = Array.length a
               && List.for_all (fun i -> i >= 0 && i < Array.length a) perm ->
            Array.of_list (List.map (fun i -> a.(i)) perm)
        | _ -> fallback)
    | Reduce _, [ a ] -> (
        match Attrs.get_int attrs "axis" with
        | Some axis ->
            let rank = Array.length a in
            let axis = if axis < 0 then axis + rank else axis in
            if axis < 0 || axis >= rank then fallback
            else
              let keep =
                Option.value (Attrs.get_bool attrs "keepdims") ~default:false
              in
              let l = Array.to_list a in
              if keep then
                Array.of_list
                  (List.mapi (fun i d -> if i = axis then Dim.Fixed 1 else d) l)
              else Array.of_list (List.filteri (fun i _ -> i <> axis) l)
        | None -> fallback)
    | Bias_add, [ x; _ ] -> x
    | (Batchnorm_inference | Layernorm), x :: _ -> x
    | _ -> fallback
  in
  if Dim.consistent result out_shape then result else fallback

let dtype_promote (a : Dtype.t) (b : Dtype.t) =
  if Dtype.equal a b then a
  else if Dtype.is_float a && not (Dtype.is_float b) then a
  else if Dtype.is_float b && not (Dtype.is_float a) then b
  else if Dtype.size_bytes a >= Dtype.size_bytes b then a
  else b

let infer_dtype kind (inputs : Logical_tensor.t list) =
  let dt (lt : Logical_tensor.t) = lt.dtype in
  match ((kind : Op_kind.t), inputs) with
  | (Matmul | Conv2d), [ a; b ] -> (
      match (dt a, dt b) with
      | (S8 | U8), (S8 | U8) -> Some Dtype.S32
      | da, db -> Some (dtype_promote da db))
  | (Reshape | Gather), a :: _ -> Some (dt a)
  | (Add | Sub | Mul | Div | Maximum | Minimum), [ a; b ] ->
      Some (dtype_promote (dt a) (dt b))
  | ( ( Relu | Exp | Tanh | Sqrt | Neg | Abs | Reciprocal | Round | Clip
      | Reorder | Transpose | Broadcast | Reduce _ | Gelu | Sigmoid | Softmax ),
      a :: _ ) ->
      Some (dt a)
  | Bias_add, [ x; _ ] -> Some (dt x)
  | (Batchnorm_inference | Layernorm), x :: _ -> Some (dt x)
  | Dequantize, _ -> Some Dtype.F32
  | (Cast | Quantize), _ -> None
  | _, _ -> None

let check (op : Op.t) =
  let* shape = infer_shape op.kind op.attrs op.inputs in
  match op.outputs with
  | [ out ] ->
      let shape_ok =
        match op.kind with
        | Broadcast -> (
            (* the declared output must be a broadcast of the input *)
            match Shape.broadcast shape out.shape with
            | Some s -> Shape.equal s out.shape
            | None -> false)
        | _ -> Shape.equal shape out.shape
      in
      if not shape_ok then
        err "%s: declared output shape %s, inferred %s" op.name
          (Shape.to_string out.shape) (Shape.to_string shape)
      else begin
        match infer_dtype op.kind op.inputs with
        | Some dt when not (Dtype.equal dt out.dtype) ->
            (* Allow explicit down/up casts on matmul outputs (e.g. s32
               accumulator immediately consumed as f32 is expressed by a
               Cast op, not silently). *)
            err "%s: declared output dtype %s, inferred %s" op.name
              (Dtype.to_string out.dtype) (Dtype.to_string dt)
        | _ -> Ok ()
      end
  | outs -> err "%s: expected single output, got %d" op.name (List.length outs)
