open Gc_tensor

type env = (int * Tensor.t) list

let reduce_kind_of (k : Op_kind.reduce_kind) : Ref_ops.reduce_kind =
  match k with Sum -> Sum | Max -> Max | Min -> Min | Mean -> Mean

let eval_op (op : Op.t) ~inputs =
  let out_lt = Op.output op in
  let attrs = op.attrs in
  let value =
    match (op.kind, inputs) with
    | Op_kind.Matmul, [ a; b ] ->
        let b =
          if Option.value (Attrs.get_bool attrs "transpose_b") ~default:false
          then
            let rank = Shape.rank (Tensor.shape b) in
            let perm = Array.init rank Fun.id in
            perm.(rank - 2) <- rank - 1;
            perm.(rank - 1) <- rank - 2;
            Reorder.transpose b perm
          else b
        in
        Ref_ops.matmul ~out_dtype:out_lt.Logical_tensor.dtype a b
    | Conv2d, [ x; w ] -> (
        match Infer.conv_attrs attrs with
        | Error e -> invalid_arg ("Reference.eval_op: " ^ e)
        | Ok (strides, pads, dilations) ->
            Ref_ops.conv2d ~out_dtype:out_lt.Logical_tensor.dtype ~strides
              ~pads ~dilations x w)
    | Reshape, [ a ] ->
        let target = Shape.of_list (Attrs.ints_exn attrs "shape") in
        Tensor.init (Tensor.dtype a) target (fun idx ->
            Tensor.get a
              (Shape.unoffset (Tensor.shape a) (Shape.offset target idx)))
    | Gather, [ data; indices ] ->
        let dshape = Tensor.shape data in
        let drank = Shape.rank dshape in
        let irank = Shape.rank (Tensor.shape indices) in
        let rows = Shape.dim dshape 0 in
        Tensor.init (Tensor.dtype data) out_lt.shape (fun idx ->
            let row = int_of_float (Tensor.get indices (Array.sub idx 0 irank)) in
            if row < 0 || row >= rows then
              invalid_arg
                (Printf.sprintf "Reference.eval_op: gather index %d out of [0,%d)"
                   row rows);
            let didx = Array.make drank 0 in
            didx.(0) <- row;
            Array.blit idx irank didx 1 (drank - 1);
            Tensor.get data didx)
    | Add, [ a; b ] -> Ref_ops.add a b
    | Sub, [ a; b ] -> Ref_ops.sub a b
    | Mul, [ a; b ] -> Ref_ops.mul a b
    | Div, [ a; b ] -> Ref_ops.div a b
    | Maximum, [ a; b ] -> Ref_ops.max a b
    | Minimum, [ a; b ] -> Ref_ops.min a b
    | Relu, [ a ] -> Ref_ops.relu a
    | Exp, [ a ] -> Ref_ops.exp a
    | Tanh, [ a ] -> Ref_ops.tanh a
    | Sqrt, [ a ] -> Ref_ops.sqrt a
    | Neg, [ a ] -> Ref_ops.neg a
    | Abs, [ a ] -> Ref_ops.abs a
    | Reciprocal, [ a ] -> Ref_ops.reciprocal a
    | Round, [ a ] -> Ref_ops.round a
    | Clip, [ a ] ->
        Ref_ops.clip ~lo:(Attrs.float_exn attrs "lo")
          ~hi:(Attrs.float_exn attrs "hi") a
    | Cast, [ a ] -> Reorder.cast ~name:out_lt.name a out_lt.dtype
    | Reorder, [ a ] -> Reorder.to_layout ~name:out_lt.name a out_lt.layout
    | Transpose, [ a ] ->
        Reorder.transpose a (Array.of_list (Attrs.ints_exn attrs "perm"))
    | Broadcast, [ a ] ->
        let target = out_lt.shape in
        Tensor.init (Tensor.dtype a) target (fun idx ->
            Tensor.get a (Shape.broadcast_index ~from:(Tensor.shape a) idx))
    | Reduce k, [ a ] ->
        Ref_ops.reduce (reduce_kind_of k)
          ~axis:(Attrs.int_exn attrs "axis")
          ~keepdims:(Option.value (Attrs.get_bool attrs "keepdims") ~default:false)
          a
    | Gelu, [ a ] ->
        if Option.value (Attrs.get_bool attrs "approximate") ~default:true then
          Ref_ops.gelu_tanh a
        else Ref_ops.gelu_erf a
    | Sigmoid, [ a ] -> Ref_ops.sigmoid a
    | Softmax, [ a ] -> Ref_ops.softmax ~axis:(Attrs.int_exn attrs "axis") a
    | Batchnorm_inference, [ x; gamma; beta; mean; variance ] ->
        let eps = Attrs.float_exn attrs "epsilon" in
        let invstd =
          Ref_ops.map (fun v -> 1. /. Stdlib.sqrt (v +. eps)) variance
        in
        Ref_ops.add (Ref_ops.mul (Ref_ops.sub x mean) (Ref_ops.mul invstd gamma)) beta
    | Layernorm, [ x; gamma; beta ] ->
        let eps = Attrs.float_exn attrs "epsilon" in
        let axis = Shape.rank (Tensor.shape x) - 1 in
        let mean = Ref_ops.reduce Mean ~axis ~keepdims:true x in
        let xc = Ref_ops.sub x mean in
        let var = Ref_ops.reduce Mean ~axis ~keepdims:true (Ref_ops.mul xc xc) in
        let rstd = Ref_ops.map (fun v -> 1. /. Stdlib.sqrt (v +. eps)) var in
        Ref_ops.add (Ref_ops.mul (Ref_ops.mul xc rstd) gamma) beta
    | Bias_add, [ x; bias ] -> Ref_ops.add x bias
    | Quantize, [ a ] ->
        Ref_ops.quantize
          ~scale:(Attrs.float_exn attrs "scale")
          ~zp:(Attrs.int_exn attrs "zp")
          out_lt.dtype a
    | Dequantize, [ a ] ->
        Ref_ops.dequantize
          ~scale:(Attrs.float_exn attrs "scale")
          ~zp:(Attrs.int_exn attrs "zp")
          a
    | k, inputs ->
        invalid_arg
          (Printf.sprintf "Reference.eval_op: %s with %d inputs"
             (Op_kind.to_string k) (List.length inputs))
  in
  (* coerce to the declared output dtype (e.g. matmul s32 accumulators) *)
  let value =
    if Dtype.equal (Tensor.dtype value) out_lt.dtype then value
    else Reorder.cast value out_lt.dtype
  in
  [ value ]

let eval_tensors (g : Graph.t) bindings =
  let env : (int, Tensor.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((lt : Logical_tensor.t), v) ->
      if not (Shape.equal lt.shape (Tensor.shape v)) then
        invalid_arg
          (Printf.sprintf "Reference.run: binding for %s has shape %s, want %s"
             lt.name
             (Shape.to_string (Tensor.shape v))
             (Shape.to_string lt.shape));
      if not (Dtype.equal lt.dtype (Tensor.dtype v)) then
        invalid_arg
          (Printf.sprintf "Reference.run: binding for %s has dtype %s, want %s"
             lt.name
             (Dtype.to_string (Tensor.dtype v))
             (Dtype.to_string lt.dtype));
      Hashtbl.replace env lt.id v)
    bindings;
  List.iter
    (fun (lt : Logical_tensor.t) ->
      match Logical_tensor.const_value lt with
      | Some v when not (Hashtbl.mem env lt.id) -> Hashtbl.replace env lt.id v
      | _ -> ())
    (Graph.all_tensors g);
  let sorted =
    match Graph.topo_sort g with
    | Ok g -> g.ops
    | Error e -> invalid_arg ("Reference.run: " ^ e)
  in
  List.iter
    (fun (op : Op.t) ->
      let inputs =
        List.map
          (fun (i : Logical_tensor.t) ->
            match Hashtbl.find_opt env i.id with
            | Some v -> v
            | None ->
                invalid_arg
                  (Printf.sprintf "Reference.run: missing input %s for op %s"
                     i.name op.name))
          op.inputs
      in
      let outputs = eval_op op ~inputs in
      List.iter2
        (fun (o : Logical_tensor.t) v -> Hashtbl.replace env o.id v)
        op.outputs outputs)
    sorted;
  Hashtbl.fold (fun id v acc -> (id, v) :: acc) env []

let run g bindings =
  let env = eval_tensors g bindings in
  List.map
    (fun (o : Logical_tensor.t) ->
      match List.assoc_opt o.id env with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Reference.run: output %s was not produced" o.name))
    g.Graph.outputs
