open Gc_tensor

(** Fluent graph construction. A builder accumulates ops; each helper
    creates the op, infers the output logical tensor, and returns it.

    {[
      let b = Builder.create () in
      let x = Builder.input b ~name:"x" Dtype.F32 (Shape.of_list [32; 13]) in
      let w = Builder.const b (Tensor.random Dtype.F32 (Shape.of_list [13; 512])) in
      let h = Builder.relu b (Builder.matmul b x w) in
      let g = Builder.finalize b ~outputs:[h]
    ]} *)

type t

val create : unit -> t

(** Declare a graph input. [const:true] marks it a runtime constant (e.g.
    a weight whose buffer is stable across executions — the paper's
    "runtime constant" that constant-weight preprocessing exploits).
    [dims] marks axes symbolic for shape-polymorphic compilation (must be
    [Dim.consistent] with [shape], the representative instantiation). *)
val input :
  ?name:string ->
  ?layout:Layout.t ->
  ?const:bool ->
  ?dims:Dim.t list ->
  t ->
  Dtype.t ->
  Shape.t ->
  Logical_tensor.t

(** Register a compile-time constant. *)
val const : ?name:string -> t -> Tensor.t -> Logical_tensor.t

val scalar_const : ?name:string -> t -> float -> Logical_tensor.t

(** Generic op insertion with explicit output. *)
val add_op :
  ?name:string ->
  ?attrs:Attrs.t ->
  t ->
  Op_kind.t ->
  inputs:Logical_tensor.t list ->
  output:Logical_tensor.t ->
  Logical_tensor.t

(** {1 Op helpers} — each infers the output logical tensor. *)

val matmul :
  ?name:string ->
  ?transpose_b:bool ->
  t ->
  Logical_tensor.t ->
  Logical_tensor.t ->
  Logical_tensor.t

(** [conv2d t x w]: NHWC activations × HWIO weights. Defaults: unit
    strides/dilations, zero padding. [pads] is [(top, left, bottom, right)]. *)
val conv2d :
  ?name:string ->
  ?strides:int * int ->
  ?pads:int * int * int * int ->
  ?dilations:int * int ->
  t ->
  Logical_tensor.t ->
  Logical_tensor.t ->
  Logical_tensor.t

(** Row-major flat reinterpretation to [shape] (element count preserved).
    At most one entry may be [-1]: a wildcard inferred from the element
    count, which also inherits the input's symbolic axis when the fixed
    products on both sides agree. *)
val reshape :
  ?name:string -> t -> shape:int list -> Logical_tensor.t -> Logical_tensor.t

(** [gather t data indices]: rows of [data] along axis 0 selected by the
    integer tensor [indices]; output shape = indices.shape @ data.shape[1:]. *)
val gather :
  ?name:string -> t -> Logical_tensor.t -> Logical_tensor.t -> Logical_tensor.t

val add : t -> Logical_tensor.t -> Logical_tensor.t -> Logical_tensor.t
val sub : t -> Logical_tensor.t -> Logical_tensor.t -> Logical_tensor.t
val mul : t -> Logical_tensor.t -> Logical_tensor.t -> Logical_tensor.t
val div : t -> Logical_tensor.t -> Logical_tensor.t -> Logical_tensor.t
val maximum : t -> Logical_tensor.t -> Logical_tensor.t -> Logical_tensor.t
val minimum : t -> Logical_tensor.t -> Logical_tensor.t -> Logical_tensor.t
val relu : t -> Logical_tensor.t -> Logical_tensor.t
val exp : t -> Logical_tensor.t -> Logical_tensor.t
val tanh : t -> Logical_tensor.t -> Logical_tensor.t
val sqrt : t -> Logical_tensor.t -> Logical_tensor.t
val neg : t -> Logical_tensor.t -> Logical_tensor.t
val abs : t -> Logical_tensor.t -> Logical_tensor.t
val reciprocal : t -> Logical_tensor.t -> Logical_tensor.t
val round : t -> Logical_tensor.t -> Logical_tensor.t
val clip : t -> lo:float -> hi:float -> Logical_tensor.t -> Logical_tensor.t
val cast : t -> Dtype.t -> Logical_tensor.t -> Logical_tensor.t
val reorder : t -> Layout.t -> Logical_tensor.t -> Logical_tensor.t
val transpose : t -> perm:int list -> Logical_tensor.t -> Logical_tensor.t
val broadcast : t -> Shape.t -> Logical_tensor.t -> Logical_tensor.t
val reduce : t -> Op_kind.reduce_kind -> axis:int -> keepdims:bool -> Logical_tensor.t -> Logical_tensor.t
val gelu : ?approximate:bool -> t -> Logical_tensor.t -> Logical_tensor.t
val sigmoid : t -> Logical_tensor.t -> Logical_tensor.t
val softmax : t -> axis:int -> Logical_tensor.t -> Logical_tensor.t
val bias_add : t -> Logical_tensor.t -> Logical_tensor.t -> Logical_tensor.t

val batchnorm_inference :
  t ->
  epsilon:float ->
  x:Logical_tensor.t ->
  gamma:Logical_tensor.t ->
  beta:Logical_tensor.t ->
  mean:Logical_tensor.t ->
  variance:Logical_tensor.t ->
  Logical_tensor.t

val layernorm :
  t ->
  epsilon:float ->
  x:Logical_tensor.t ->
  gamma:Logical_tensor.t ->
  beta:Logical_tensor.t ->
  Logical_tensor.t

val quantize : t -> scale:float -> zp:int -> Dtype.t -> Logical_tensor.t -> Logical_tensor.t
val dequantize : t -> scale:float -> zp:int -> Logical_tensor.t -> Logical_tensor.t

(** Build the graph. Verifies; raises [Invalid_argument] on a malformed
    graph (a builder bug, not a user data error). *)
val finalize : t -> outputs:Logical_tensor.t list -> Graph.t
