let site_alloc = "alloc"
let site_kernel_nan = "kernel_nan"
let site_worker = "worker"
let site_slow = "slow"
let site_queue_full = "queue_full"
let site_budget_exhausted = "budget_exhausted"
let site_slow_drain = "slow_drain"
let site_worker_death = "worker_death"
let site_stuck_worker = "stuck_worker"

(* Raised (and left uncaught by the task-containment machinery) when the
   ["worker_death"] site fires: the worker domain must die uncleanly, not
   wrap the exception into a typed task failure. *)
exception Injected_worker_death

type site_state = {
  period : int;
  phase : int;  (* which probe of each period window fires *)
  scope : string option;
      (* armed against one scope (e.g. a model name): probes carrying a
         different scope pass through without even consuming a probe
         index, so the fault schedule is deterministic in the {e matching}
         probe sequence alone *)
  mutable probes : int;
  mutable fires : int;
}

(* One atomic load is the entire cost at an injection site when disarmed. *)
let armed = Atomic.make false
let lock = Mutex.create ()
let sites : (string, site_state) Hashtbl.t = Hashtbl.create 8
let the_seed = ref 0
let slow_ms = ref 100

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled () = Atomic.get armed
let seed () = !the_seed

(* Deterministic phase: a fixed (seed, site) pair always fires the same
   probe of each period window. *)
let phase_of ~seed ~site ~period =
  if period <= 1 then 0 else Hashtbl.hash (seed, site) mod period

let parse_spec spec =
  String.split_on_char ',' spec
  |> List.filter_map (fun item ->
         let item = String.trim item in
         if item = "" then None
         else
           (* site[:period][@scope] — "@scope" arms the site against one
              scope only (a model name in the serving layer) *)
           let item, scope =
             match String.index_opt item '@' with
             | None -> (item, None)
             | Some i ->
                 ( String.trim (String.sub item 0 i),
                   Some
                     (String.trim
                        (String.sub item (i + 1) (String.length item - i - 1)))
                 )
           in
           match String.index_opt item ':' with
           | None -> Some (item, 1, scope)
           | Some i ->
               let site = String.sub item 0 i in
               let p = String.sub item (i + 1) (String.length item - i - 1) in
               let period =
                 match int_of_string_opt (String.trim p) with
                 | Some v when v >= 1 -> v
                 | _ ->
                     Gc_errors.invalid_input
                       ~ctx:[ ("spec", spec); ("site", site) ]
                       "GC_FAULTS: period must be a positive integer"
               in
               Some (String.trim site, period, scope))

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v -> v
  | None -> default

let configure ?seed ?slow_ms:sm spec =
  locked (fun () ->
      Hashtbl.reset sites;
      the_seed := (match seed with Some s -> s | None -> env_int "GC_FAULT_SEED" 0);
      slow_ms := (match sm with Some v -> v | None -> env_int "GC_FAULT_SLOW_MS" 100);
      List.iter
        (fun (site, period, scope) ->
          Hashtbl.replace sites site
            {
              period;
              phase = phase_of ~seed:!the_seed ~site ~period;
              scope;
              probes = 0;
              fires = 0;
            })
        (parse_spec spec);
      Atomic.set armed (Hashtbl.length sites > 0))

let clear () =
  locked (fun () ->
      Hashtbl.reset sites;
      Atomic.set armed false)

(* Arm from the environment at program start; inert when GC_FAULTS unset. *)
let () =
  match Sys.getenv_opt "GC_FAULTS" with
  | Some spec when String.trim spec <> "" -> configure spec
  | _ -> ()

let should_fire ?scope site =
  if not (Atomic.get armed) then false
  else
    locked (fun () ->
        match Hashtbl.find_opt sites site with
        | None -> false
        | Some s -> (
            match s.scope with
            | Some sc when scope <> Some sc ->
                (* armed against a different scope: this probe is not part
                   of the fault schedule at all *)
                false
            | _ ->
                let n = s.probes in
                s.probes <- n + 1;
                let fire = n mod s.period = s.phase in
                if fire then s.fires <- s.fires + 1;
                fire))

let site_scope site =
  locked (fun () ->
      match Hashtbl.find_opt sites site with Some s -> s.scope | None -> None)

let probe_count site =
  locked (fun () ->
      match Hashtbl.find_opt sites site with Some s -> s.probes | None -> 0)

let fire_count site =
  locked (fun () ->
      match Hashtbl.find_opt sites site with Some s -> s.fires | None -> 0)

let alloc_check ~dtype ~numel =
  if Atomic.get armed && should_fire site_alloc then
    Gc_errors.resource_exhausted ~resource:"buffer"
      ~ctx:
        [
          ("dtype", dtype);
          ("numel", string_of_int numel);
          ("injected", "true");
        ]
      "injected allocation failure"

let worker_check ~task =
  if Atomic.get armed && should_fire site_worker then
    failwith (Printf.sprintf "gc-fault(worker): injected exception in task %d" task)

let slow_check () =
  if Atomic.get armed && should_fire site_slow then
    Unix.sleepf (float_of_int !slow_ms /. 1000.)

let nan_check () = Atomic.get armed && should_fire site_kernel_nan

(* Serving-layer sites (admission / governor / drain). The boolean probes
   return whether the fault fires; the serving layer turns a hit into its
   own typed rejection so the error carries real queue/budget context. *)
let queue_full_check () = Atomic.get armed && should_fire site_queue_full

let slow_drain_check () =
  if Atomic.get armed && should_fire site_slow_drain then
    Unix.sleepf (float_of_int !slow_ms /. 1000.)

(* Supervision sites. [worker_death_check] raises a dedicated exception
   that the containment wrappers deliberately do NOT absorb — the worker
   domain exits uncleanly and supervision must notice via heartbeats /
   the spawn wrapper. [stuck_worker_check] burns wall-clock without
   stamping a heartbeat (busy spin, not sleep, so the domain is
   runnable-but-unresponsive exactly like a livelocked worker). *)
let worker_death_check ?scope () =
  if Atomic.get armed && should_fire ?scope site_worker_death then
    raise Injected_worker_death

let stuck_worker_check ?scope () =
  if Atomic.get armed && should_fire ?scope site_stuck_worker then begin
    let until = Unix.gettimeofday () +. (float_of_int !slow_ms /. 1000.) in
    while Unix.gettimeofday () < until do
      ignore (Sys.opaque_identity ())
    done
  end
