(** Deterministic, seeded, site-keyed fault injection.

    The registry is compiled into every build but inert unless armed —
    either through the [GC_FAULTS] environment variable at process start,
    or programmatically via {!configure} (chaos tests). The disabled-path
    cost at every injection site is a single atomic load.

    {2 Spec syntax}

    [GC_FAULTS="site:period,site:period,..."] — each listed site is armed
    and fires on every [period]-th probe (period defaults to 1 = every
    probe). {b Which} probe of each period window fires is derived
    deterministically from the seed ([GC_FAULT_SEED], default 0) and the
    site name, so different seeds shift the faults to different probes
    while a fixed seed reproduces the exact same fault schedule.

    A site may be armed {e against one scope}: ["site:period@scope"]
    (e.g. ["worker_death:10@bert_f32"]). Probes carrying a different
    scope — or none — pass through without consuming a probe index, so
    the fault schedule is deterministic in the matching-probe sequence
    alone. The serving layer probes the worker-death site with the name
    of the model a worker last dispatched (and the stuck-worker site with
    the model being processed), so a scoped arm is "faults correlated
    with this model's traffic": noisy-neighbor chaos that must not touch
    other tenants' workers directly.

    {2 Sites}

    - ["alloc"] — {!Gc_tensor.Buffer.create} raises
      [Resource_exhausted] instead of allocating.
    - ["kernel_nan"] — {!Gc_microkernel.Brgemm.dispatch} poisons one
      output element with NaN after computing (simulating a miscompiled
      kernel: wrong output, no exception).
    - ["worker"] — a parallel-pool worker raises a plain exception inside
      a task (exercising the containment/wrapping path).
    - ["slow"] — a parallel-pool task sleeps [GC_FAULT_SLOW_MS]
      (default 100 ms) before running (exercising the watchdog path).
    - ["queue_full"] — {!Gc_serve} admission treats the bounded queue as
      full for one probe, shedding the request with a typed [Overloaded].
    - ["budget_exhausted"] — {!Gc_tensor.Memgov.charge} raises
      [Resource_exhausted] as if the memory budget were exceeded.
    - ["slow_drain"] — the serving layer's drain loop sleeps
      [GC_FAULT_SLOW_MS] (exercising the drain-deadline shedding path).
    - ["worker_death"] — a worker domain (serve worker or pool worker)
      raises {!Injected_worker_death} at a job boundary and exits
      uncleanly, exercising the supervision respawn path.
    - ["stuck_worker"] — a worker busy-spins [GC_FAULT_SLOW_MS] without
      stamping its heartbeat (runnable but unresponsive), exercising the
      stuck-domain supersession path. *)

val site_alloc : string
val site_kernel_nan : string
val site_worker : string
val site_slow : string
val site_queue_full : string
val site_budget_exhausted : string
val site_slow_drain : string
val site_worker_death : string
val site_stuck_worker : string

(** Raised by {!worker_death_check} when ["worker_death"] fires. Task
    containment must let this escape: the point of the site is an unclean
    worker-domain exit, not a typed task failure. *)
exception Injected_worker_death

(** Armed at all (any site registered)? The one-load fast gate. *)
val enabled : unit -> bool

(** [configure ?seed ?slow_ms spec] replaces the registry with [spec]
    (same syntax as [GC_FAULTS]); counters reset. Overrides the
    environment. [seed] defaults to [GC_FAULT_SEED] (or 0). *)
val configure : ?seed:int -> ?slow_ms:int -> string -> unit

(** Disarm every site and reset counters. *)
val clear : unit -> unit

(** The active seed. *)
val seed : unit -> int

(** [should_fire ?scope site] records a probe at [site] and reports
    whether the fault fires. Always [false] for unarmed sites, and for
    scope-armed sites probed under a different (or no) scope — such
    probes do not consume a probe index. Deterministic in (seed, site,
    matching-probe index). *)
val should_fire : ?scope:string -> string -> bool

(** The scope a site is armed against ([None]: unarmed or unscoped). *)
val site_scope : string -> string option

(** Probes / fires recorded per site since the last [configure]/[clear]. *)
val probe_count : string -> int

val fire_count : string -> int

(** {2 Site-specific helpers used at the injection points} *)

(** Raises [Gc_errors.Resource_exhausted] when ["alloc"] fires. *)
val alloc_check : dtype:string -> numel:int -> unit

(** Raises a plain [Failure] when ["worker"] fires (the parallel pool must
    catch, wrap and classify it). *)
val worker_check : task:int -> unit

(** Sleeps the configured slow-task delay when ["slow"] fires. *)
val slow_check : unit -> unit

(** Whether ["kernel_nan"] fires for this kernel invocation. *)
val nan_check : unit -> bool

(** Whether ["queue_full"] fires for this admission probe (the serving
    layer sheds the request with its own typed [Overloaded]). *)
val queue_full_check : unit -> bool

(** Sleeps the configured slow-task delay when ["slow_drain"] fires. *)
val slow_drain_check : unit -> unit

(** Raises {!Injected_worker_death} when ["worker_death"] fires. Call only
    at worker-side job boundaries where no ticket or grain is held.
    [scope] is the probing worker's fault scope (the serving layer passes
    the model name it last dispatched); see the scoped-arm syntax above. *)
val worker_death_check : ?scope:string -> unit -> unit

(** Busy-spins the configured slow-task delay when ["stuck_worker"] fires,
    without yielding a heartbeat. [scope] as for {!worker_death_check}
    (the model being processed). *)
val stuck_worker_check : ?scope:string -> unit -> unit
