open Gc_tensor
open Gc_graph_ir

type built = {
  graph : Graph.t;
  data : (Logical_tensor.t * Tensor.t) list;
}

let sh = Shape.of_list

let act_scale = 0.05
let w_scale = 0.02

(* An MLP tower on [x]; ReLU between layers, the caller decides whether
   the last layer gets one. [quantized] wraps each matmul in the
   symmetric static-quantization pattern. *)
let tower b ~quantized ~prefix ~seed x widths ~last_relu push_data =
  let n = List.length widths in
  let cur = ref x and prev = ref (Shape.dim (x : Logical_tensor.t).shape 1) in
  List.iteri
    (fun i h ->
      let dt = if quantized then Dtype.S8 else Dtype.F32 in
      let lo, hi = if quantized then (-30., 30.) else (-0.3, 0.3) in
      let w =
        Builder.input b
          ~name:(Printf.sprintf "%s_w%d" prefix i)
          ~const:true dt
          (sh [ !prev; h ])
      in
      push_data (w, Tensor.random ~seed:(seed + i) ~lo ~hi dt (sh [ !prev; h ]));
      let y =
        if quantized then
          let xq = Builder.quantize b ~scale:act_scale ~zp:0 Dtype.S8 !cur in
          let xf = Builder.dequantize b ~scale:act_scale ~zp:0 xq in
          let wf = Builder.dequantize b ~scale:w_scale ~zp:0 w in
          Builder.matmul b xf wf
        else Builder.matmul b !cur w
      in
      let y = if i < n - 1 || last_relu then Builder.relu b y else y in
      cur := y;
      prev := h)
    widths;
  !cur

let build ~quantized ?(seed = 2718) ?batch_dim ~batch ~dense_dim ~bottom
    ~tables ~vocab ~emb_dim ~top () =
  (match bottom with
  | [] -> invalid_arg "Dlrm: bottom MLP needs at least one layer"
  | widths ->
      if List.nth widths (List.length widths - 1) <> emb_dim then
        invalid_arg "Dlrm: bottom MLP must end at emb_dim");
  if top = [] then invalid_arg "Dlrm: top MLP needs at least one layer";
  if tables < 1 then invalid_arg "Dlrm: need at least one embedding table";
  let b = Builder.create () in
  let dense_dims = Option.map (fun d -> [ d; Dim.Fixed dense_dim ]) batch_dim in
  let dense =
    Builder.input b ~name:"dense" ?dims:dense_dims Dtype.F32
      (sh [ batch; dense_dim ])
  in
  let data =
    ref [ (dense, Tensor.random ~seed Dtype.F32 (sh [ batch; dense_dim ])) ]
  in
  let push_data d = data := d :: !data in
  (* bottom MLP: dense features -> [batch, emb_dim] *)
  let bot =
    tower b ~quantized ~prefix:"bot" ~seed:(seed + 10) dense bottom
      ~last_relu:true push_data
  in
  (* sparse features: one gather per embedding table, sum-pooled *)
  let pooled =
    List.init tables (fun t ->
        let table =
          Builder.input b
            ~name:(Printf.sprintf "emb%d" t)
            ~const:true Dtype.F32
            (sh [ vocab; emb_dim ])
        in
        push_data
          ( table,
            Tensor.random ~seed:(seed + 100 + t) ~lo:(-0.2) ~hi:0.2 Dtype.F32
              (sh [ vocab; emb_dim ]) );
        let idx =
          Builder.input b
            ~name:(Printf.sprintf "idx%d" t)
            ?dims:(Option.map (fun d -> [ d ]) batch_dim)
            Dtype.S32 (sh [ batch ])
        in
        push_data
          ( idx,
            Tensor.random ~seed:(seed + 200 + t) ~lo:0.
              ~hi:(float_of_int (vocab - 1))
              Dtype.S32 (sh [ batch ]) );
        Builder.gather b table idx)
    |> function
    | [ e ] -> e
    | e :: rest -> List.fold_left (Builder.add b) e rest
    | [] -> assert false
  in
  (* feature interaction: dense·sparse product joins the two streams
     elementwise (the dot-interaction family without a concat op) *)
  let interact = Builder.add b bot (Builder.mul b bot pooled) in
  (* top MLP down to one logit per sample, then sigmoid *)
  let logit =
    tower b ~quantized ~prefix:"top" ~seed:(seed + 20) interact top
      ~last_relu:false push_data
  in
  let y = Builder.sigmoid b logit in
  { graph = Builder.finalize b ~outputs:[ y ]; data = List.rev !data }

let build_f32 ?seed ?batch_dim ~batch ~dense_dim ~bottom ~tables ~vocab
    ~emb_dim ~top () =
  build ~quantized:false ?seed ?batch_dim ~batch ~dense_dim ~bottom ~tables
    ~vocab ~emb_dim ~top ()

let build_int8 ?seed ?batch_dim ~batch ~dense_dim ~bottom ~tables ~vocab
    ~emb_dim ~top () =
  build ~quantized:true ?seed ?batch_dim ~batch ~dense_dim ~bottom ~tables
    ~vocab ~emb_dim ~top ()
