open Gc_tensor
open Gc_graph_ir

(** Whole-model BERT transformer block stack (the paper's MLPerf BERT-base
    workload, scaled by parameters): [layers] repeated encoder blocks on a
    flat [batch·seq, hidden] residual stream. Each block is a full
    self-attention (QKV projections, head split via reshape+transpose,
    scaled-dot-product softmax attention, head fold, output projection),
    residual + layernorm, GELU FFN, residual + layernorm.

    The int8 variant wraps every projection and FFN matmul in the
    symmetric static-quantization pattern (quantize → dequantize → matmul)
    that the low-precision pass rewrites to int8 matmuls; the attention
    softmax core stays f32. *)

type built = {
  graph : Graph.t;
  data : (Logical_tensor.t * Tensor.t) list;
      (** every graph input with deterministic synthetic values *)
}

val build_f32 :
  ?seed:int ->
  layers:int ->
  batch:int ->
  seq:int ->
  hidden:int ->
  heads:int ->
  unit ->
  built

val build_int8 :
  ?seed:int ->
  layers:int ->
  batch:int ->
  seq:int ->
  hidden:int ->
  heads:int ->
  unit ->
  built
