open Gc_tensor
open Gc_graph_ir

(** Single Conv2d workload builders: NHWC activations × HWIO constant
    weights through the im2col-to-BRGEMM template, optionally with a fused
    ReLU. The int8 variant wraps the conv in the symmetric static
    quantization pattern (dequantize → conv → quantize-free f32 output)
    that the low-precision pass rewrites to an int8 conv. *)

type built = {
  graph : Graph.t;
  data : (Logical_tensor.t * Tensor.t) list;
      (** every graph input with deterministic synthetic values *)
}

(** [batch_dim] marks the leading NHWC axis symbolic for shape-polymorphic
    compilation; [batch] remains the representative size. *)
val build_f32 :
  ?seed:int ->
  ?relu:bool ->
  ?batch_dim:Dim.t ->
  batch:int ->
  height:int ->
  width:int ->
  channels:int ->
  kh:int ->
  kw:int ->
  out_channels:int ->
  strides:int * int ->
  pads:int * int * int * int ->
  dilations:int * int ->
  unit ->
  built

(** Symmetric int8: s8 activations and weights, both with zero point 0
    (the conv conversion requires it — there is no compensation path for
    HWIO weights). *)
val build_int8 :
  ?seed:int ->
  ?relu:bool ->
  ?batch_dim:Dim.t ->
  batch:int ->
  height:int ->
  width:int ->
  channels:int ->
  kh:int ->
  kw:int ->
  out_channels:int ->
  strides:int * int ->
  pads:int * int * int * int ->
  dilations:int * int ->
  unit ->
  built
