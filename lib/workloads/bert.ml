open Gc_tensor
open Gc_graph_ir

type built = {
  graph : Graph.t;
  data : (Logical_tensor.t * Tensor.t) list;
}

let sh = Shape.of_list

let act_scale = 0.08
let w_scale = 0.01

(* One full transformer encoder block on the flat residual stream
   [tokens, hidden]: self-attention (QKV projections, scaled-dot-product
   over heads via reshape/transpose, output projection), residual +
   layernorm, GELU FFN, residual + layernorm. [quantized] wraps every
   projection and FFN matmul in the symmetric static-quantization pattern
   (the attention softmax core stays f32, as deployed int8 BERTs do). *)
let block b ~quantized ~layer ~batch ~seq ~heads ~hidden ~seed x push_data =
  let d = hidden / heads in
  let tokens = batch * seq in
  let scale = Builder.scalar_const b (Stdlib.sqrt (float_of_int d)) in
  let name n = Printf.sprintf "l%d_%s" layer n in
  let mkw n s shape lo hi =
    let dt = if quantized then Dtype.S8 else Dtype.F32 in
    let lo, hi = if quantized then (-30., 30.) else (lo, hi) in
    let w = Builder.input b ~name:(name n) ~const:true dt (sh shape) in
    push_data (w, Tensor.random ~seed:s ~lo ~hi dt (sh shape));
    w
  in
  let mkv n s =
    let v = Builder.input b ~name:(name n) ~const:true Dtype.F32 (sh [ hidden ]) in
    push_data (v, Tensor.random ~seed:s ~lo:0.7 ~hi:1.3 Dtype.F32 (sh [ hidden ]));
    v
  in
  let project n s x =
    let w = mkw n s [ hidden; hidden ] (-0.1) 0.1 in
    if quantized then
      let xq = Builder.quantize b ~scale:act_scale ~zp:0 Dtype.S8 x in
      let xf = Builder.dequantize b ~scale:act_scale ~zp:0 xq in
      let wf = Builder.dequantize b ~scale:w_scale ~zp:0 w in
      Builder.matmul b xf wf
    else Builder.matmul b x w
  in
  (* head split: [tokens, hidden] -> [batch, heads, seq, d] *)
  let split x =
    Builder.transpose b ~perm:[ 0; 2; 1; 3 ]
      (Builder.reshape b ~shape:[ batch; seq; heads; d ] x)
  in
  let q = split (project "wq" (seed + 1) x) in
  let k = split (project "wk" (seed + 2) x) in
  let v = split (project "wv" (seed + 3) x) in
  let s = Builder.matmul b ~transpose_b:true q k in
  let s = Builder.div b s scale in
  let p = Builder.softmax b ~axis:3 s in
  let o = Builder.matmul b p v in
  (* head fold: [batch, heads, seq, d] -> [tokens, hidden] *)
  let o =
    Builder.reshape b ~shape:[ tokens; hidden ]
      (Builder.transpose b ~perm:[ 0; 2; 1; 3 ] o)
  in
  let o = project "wo" (seed + 4) o in
  let g1 = mkv "ln1_gamma" (seed + 5) and b1 = mkv "ln1_beta" (seed + 6) in
  let h =
    Builder.layernorm b ~epsilon:1e-5 ~x:(Builder.add b x o) ~gamma:g1 ~beta:b1
  in
  let ffn =
    let w1 = mkw "w_ffn1" (seed + 7) [ hidden; 4 * hidden ] (-0.1) 0.1 in
    let w2 = mkw "w_ffn2" (seed + 8) [ 4 * hidden; hidden ] (-0.1) 0.1 in
    let mm x w =
      if quantized then
        let xq = Builder.quantize b ~scale:act_scale ~zp:0 Dtype.S8 x in
        let xf = Builder.dequantize b ~scale:act_scale ~zp:0 xq in
        let wf = Builder.dequantize b ~scale:w_scale ~zp:0 w in
        Builder.matmul b xf wf
      else Builder.matmul b x w
    in
    mm (Builder.gelu b (mm h w1)) w2
  in
  let g2 = mkv "ln2_gamma" (seed + 9) and b2 = mkv "ln2_beta" (seed + 10) in
  Builder.layernorm b ~epsilon:1e-5 ~x:(Builder.add b h ffn) ~gamma:g2 ~beta:b2

let build ~quantized ?(seed = 8101) ~layers ~batch ~seq ~hidden ~heads () =
  if hidden mod heads <> 0 then invalid_arg "Bert: hidden not divisible by heads";
  if layers < 1 then invalid_arg "Bert: need at least one layer";
  let b = Builder.create () in
  let tokens = batch * seq in
  let x = Builder.input b ~name:"x" Dtype.F32 (sh [ tokens; hidden ]) in
  let data = ref [ (x, Tensor.random ~seed Dtype.F32 (sh [ tokens; hidden ])) ] in
  let push_data d = data := d :: !data in
  let cur = ref x in
  for layer = 0 to layers - 1 do
    cur :=
      block b ~quantized ~layer ~batch ~seq ~heads ~hidden
        ~seed:(seed + (layer * 100))
        !cur push_data
  done;
  { graph = Builder.finalize b ~outputs:[ !cur ]; data = List.rev !data }

let build_f32 ?seed ~layers ~batch ~seq ~hidden ~heads () =
  build ~quantized:false ?seed ~layers ~batch ~seq ~hidden ~heads ()

let build_int8 ?seed ~layers ~batch ~seq ~hidden ~heads () =
  build ~quantized:true ?seed ~layers ~batch ~seq ~hidden ~heads ()
