open Gc_graph_ir
open Gc_tensor

(** Whole-model DLRM-style recommender (the paper's MLPerf DLRM workload,
    scaled by parameters): a bottom MLP over dense features, [tables]
    constant embedding tables read through axis-0 [Gather] by integer
    index inputs and sum-pooled, an elementwise dense×sparse feature
    interaction, and a top MLP ending in a sigmoid click-probability.

    The int8 variant runs both MLP towers through the symmetric
    static-quantization pattern; gathers and the interaction stay f32. *)

type built = {
  graph : Graph.t;
  data : (Logical_tensor.t * Tensor.t) list;
      (** every graph input with deterministic synthetic values; index
          inputs are s32 tensors with values in [0, vocab) *)
}

(** [bottom] must end at [emb_dim]; [top] ends at the logit width
    (typically 1). [batch_dim] marks the per-sample axis (dense features
    and every index input) symbolic for shape-polymorphic compilation;
    [batch] remains the representative size. *)
val build_f32 :
  ?seed:int ->
  ?batch_dim:Dim.t ->
  batch:int ->
  dense_dim:int ->
  bottom:int list ->
  tables:int ->
  vocab:int ->
  emb_dim:int ->
  top:int list ->
  unit ->
  built

val build_int8 :
  ?seed:int ->
  ?batch_dim:Dim.t ->
  batch:int ->
  dense_dim:int ->
  bottom:int list ->
  tables:int ->
  vocab:int ->
  emb_dim:int ->
  top:int list ->
  unit ->
  built
