open Gc_tensor
open Gc_graph_ir

type built = {
  graph : Graph.t;
  data : (Logical_tensor.t * Tensor.t) list;
}

let sh = Shape.of_list

let build_f32 ?(seed = 1234) ?batch_dim ~batch ~hidden () =
  match hidden with
  | [] | [ _ ] -> invalid_arg "Mlp.build_f32: need at least two layer widths"
  | h0 :: rest ->
      let b = Builder.create () in
      let dims = Option.map (fun d -> [ d; Dim.Fixed h0 ]) batch_dim in
      let x = Builder.input b ~name:"x" ?dims Dtype.F32 (sh [ batch; h0 ]) in
      let data = ref [ (x, Tensor.random ~seed Dtype.F32 (sh [ batch; h0 ])) ] in
      let n_layers = List.length rest in
      let cur = ref x and prev_h = ref h0 in
      List.iteri
        (fun i h ->
          let w =
            Builder.input b
              ~name:(Printf.sprintf "w%d" i)
              ~const:true Dtype.F32
              (sh [ !prev_h; h ])
          in
          data :=
            ( w,
              Tensor.random ~seed:(seed + i + 1) ~lo:(-0.5) ~hi:0.5 Dtype.F32
                (sh [ !prev_h; h ]) )
            :: !data;
          let y = Builder.matmul b !cur w in
          let y = if i < n_layers - 1 then Builder.relu b y else y in
          cur := y;
          prev_h := h)
        rest;
      { graph = Builder.finalize b ~outputs:[ !cur ]; data = List.rev !data }

let act_scale = 0.05
let act_zp = 10
let w_scale = 0.02

let build_int8 ?(seed = 1234) ?batch_dim ~batch ~hidden () =
  match hidden with
  | [] | [ _ ] -> invalid_arg "Mlp.build_int8: need at least two layer widths"
  | h0 :: rest ->
      let b = Builder.create () in
      let dims = Option.map (fun d -> [ d; Dim.Fixed h0 ]) batch_dim in
      let xq = Builder.input b ~name:"xq" ?dims Dtype.U8 (sh [ batch; h0 ]) in
      let data =
        ref [ (xq, Tensor.random ~seed ~lo:0. ~hi:40. Dtype.U8 (sh [ batch; h0 ])) ]
      in
      let n_layers = List.length rest in
      let cur = ref xq and prev_h = ref h0 in
      List.iteri
        (fun i h ->
          let wq =
            Builder.input b
              ~name:(Printf.sprintf "wq%d" i)
              ~const:true Dtype.S8
              (sh [ !prev_h; h ])
          in
          data :=
            ( wq,
              Tensor.random ~seed:(seed + i + 1) ~lo:(-30.) ~hi:30. Dtype.S8
                (sh [ !prev_h; h ]) )
            :: !data;
          let xf = Builder.dequantize b ~scale:act_scale ~zp:act_zp !cur in
          let wf = Builder.dequantize b ~scale:w_scale ~zp:0 wq in
          let y = Builder.matmul b xf wf in
          let y = if i < n_layers - 1 then Builder.relu b y else y in
          (* requantize for the next layer; the network output stays f32 *)
          let y =
            if i < n_layers - 1 then
              Builder.quantize b ~scale:(act_scale *. 4.) ~zp:act_zp Dtype.U8 y
            else y
          in
          cur := y;
          prev_h := h)
        rest;
      { graph = Builder.finalize b ~outputs:[ !cur ]; data = List.rev !data }

let build_single_matmul ?(seed = 77) ?(relu = false) ~dtype ~m ~n ~k () =
  let b = Builder.create () in
  match dtype with
  | `F32 ->
      let x = Builder.input b ~name:"x" Dtype.F32 (sh [ m; k ]) in
      let w = Builder.input b ~name:"w" ~const:true Dtype.F32 (sh [ k; n ]) in
      let y = Builder.matmul b x w in
      let y = if relu then Builder.relu b y else y in
      {
        graph = Builder.finalize b ~outputs:[ y ];
        data =
          [
            (x, Tensor.random ~seed Dtype.F32 (sh [ m; k ]));
            (w, Tensor.random ~seed:(seed + 1) ~lo:(-0.5) ~hi:0.5 Dtype.F32 (sh [ k; n ]));
          ];
      }
  | `Int8 ->
      let xq = Builder.input b ~name:"xq" Dtype.U8 (sh [ m; k ]) in
      let wq = Builder.input b ~name:"wq" ~const:true Dtype.S8 (sh [ k; n ]) in
      let xf = Builder.dequantize b ~scale:act_scale ~zp:act_zp xq in
      let wf = Builder.dequantize b ~scale:w_scale ~zp:0 wq in
      let y = Builder.matmul b xf wf in
      let y = if relu then Builder.relu b y else y in
      let y = Builder.quantize b ~scale:(act_scale *. 4.) ~zp:act_zp Dtype.U8 y in
      {
        graph = Builder.finalize b ~outputs:[ y ];
        data =
          [
            (xq, Tensor.random ~seed ~lo:0. ~hi:40. Dtype.U8 (sh [ m; k ]));
            (wq, Tensor.random ~seed:(seed + 1) ~lo:(-30.) ~hi:30. Dtype.S8 (sh [ k; n ]));
          ];
      }
