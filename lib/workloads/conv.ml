open Gc_tensor
open Gc_graph_ir

type built = {
  graph : Graph.t;
  data : (Logical_tensor.t * Tensor.t) list;
}

let sh = Shape.of_list

let act_scale = 0.05
let w_scale = 0.02

let xdims ?batch_dim ~height ~width ~channels () =
  Option.map
    (fun bd -> [ bd; Dim.Fixed height; Dim.Fixed width; Dim.Fixed channels ])
    batch_dim

let build_f32 ?(seed = 5150) ?(relu = true) ?batch_dim ~batch ~height ~width
    ~channels ~kh ~kw ~out_channels ~strides ~pads ~dilations () =
  let b = Builder.create () in
  let xs = sh [ batch; height; width; channels ] in
  let ws = sh [ kh; kw; channels; out_channels ] in
  let dims = xdims ?batch_dim ~height ~width ~channels () in
  let x = Builder.input b ~name:"x" ?dims Dtype.F32 xs in
  let w = Builder.input b ~name:"w" ~const:true Dtype.F32 ws in
  let y = Builder.conv2d b ~strides ~pads ~dilations x w in
  let y = if relu then Builder.relu b y else y in
  {
    graph = Builder.finalize b ~outputs:[ y ];
    data =
      [
        (x, Tensor.random ~seed Dtype.F32 xs);
        (w, Tensor.random ~seed:(seed + 1) ~lo:(-0.5) ~hi:0.5 Dtype.F32 ws);
      ];
  }

let build_int8 ?(seed = 5150) ?(relu = true) ?batch_dim ~batch ~height ~width
    ~channels ~kh ~kw ~out_channels ~strides ~pads ~dilations () =
  let b = Builder.create () in
  let xs = sh [ batch; height; width; channels ] in
  let ws = sh [ kh; kw; channels; out_channels ] in
  let dims = xdims ?batch_dim ~height ~width ~channels () in
  (* symmetric (zp = 0) on both sides: the int8 conv conversion has no
     compensation path — HWIO weights admit no rank-2 colsum *)
  let xq = Builder.input b ~name:"xq" ?dims Dtype.S8 xs in
  let wq = Builder.input b ~name:"wq" ~const:true Dtype.S8 ws in
  let xf = Builder.dequantize b ~scale:act_scale ~zp:0 xq in
  let wf = Builder.dequantize b ~scale:w_scale ~zp:0 wq in
  let y = Builder.conv2d b ~strides ~pads ~dilations xf wf in
  let y = if relu then Builder.relu b y else y in
  {
    graph = Builder.finalize b ~outputs:[ y ];
    data =
      [
        (xq, Tensor.random ~seed ~lo:(-40.) ~hi:40. Dtype.S8 xs);
        (wq, Tensor.random ~seed:(seed + 1) ~lo:(-30.) ~hi:30. Dtype.S8 ws);
      ];
  }
