open Gc_tensor
open Gc_graph_ir

(** MLP subgraph builders (the paper's first target workload): a stack of
    matmul layers with ReLU activations — the DLRM bottom/top MLP shape.
    The int8 variant wraps every layer in the static-quantization pattern
    (dequantize → fp32 matmul → relu → quantize) that the low-precision
    conversion pass rewrites to int8 matmuls with weight compensation. *)

type built = {
  graph : Graph.t;
  data : (Logical_tensor.t * Tensor.t) list;
      (** every graph input (activations and constant weights) with
          deterministic synthetic values *)
}

(** [build_f32 ~batch ~hidden ()] builds batch×h0 → … → batch×hN with ReLU
    between layers (none after the last). [batch_dim] (e.g. [Dim.Sym "b"])
    marks the leading activation dim symbolic for shape-polymorphic
    compilation; [batch] remains the representative size and the synthetic
    data's actual batch. *)
val build_f32 :
  ?seed:int -> ?batch_dim:Dim.t -> batch:int -> hidden:int list -> unit -> built

(** Int8 variant: u8 activations (asymmetric, non-zero zero point — the
    compensation path), s8 weights (symmetric). *)
val build_int8 :
  ?seed:int -> ?batch_dim:Dim.t -> batch:int -> hidden:int list -> unit -> built

(** A single matmul layer (Figure 7's individual-op tests): optionally
    with a fused ReLU. *)
val build_single_matmul :
  ?seed:int ->
  ?relu:bool ->
  dtype:[ `F32 | `Int8 ] ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  built
