open Gc_tensor
open Gc_graph_ir

type built = {
  graph : Graph.t;
  data : (Logical_tensor.t * Tensor.t) list;
}

let sh = Shape.of_list

let head_dim ~hidden ~heads =
  if hidden mod heads <> 0 then invalid_arg "Mha: hidden not divisible by heads";
  hidden / heads

(* Symbolic-dim vectors for Q/K/V and the mask: the leading batch (and
   optionally seq) axis swaps to the caller's Dim. *)
let qkv_dims ?batch_dim ?seq_dim ~batch ~seq ~heads ~d () =
  match (batch_dim, seq_dim) with
  | None, None -> (None, None)
  | _ ->
      let bd = Option.value batch_dim ~default:(Dim.Fixed batch) in
      let sd = Option.value seq_dim ~default:(Dim.Fixed seq) in
      ( Some [ bd; Dim.Fixed heads; sd; Dim.Fixed d ],
        Some [ bd; Dim.Fixed 1; Dim.Fixed 1; sd ] )

let build_f32 ?(seed = 4321) ?batch_dim ?seq_dim ~batch ~seq ~hidden ~heads () =
  let d = head_dim ~hidden ~heads in
  let b = Builder.create () in
  let qkv_shape = sh [ batch; heads; seq; d ] in
  let qkv_d, mask_d = qkv_dims ?batch_dim ?seq_dim ~batch ~seq ~heads ~d () in
  let q = Builder.input b ~name:"Q" ?dims:qkv_d Dtype.F32 qkv_shape in
  let k = Builder.input b ~name:"K" ?dims:qkv_d Dtype.F32 qkv_shape in
  let v = Builder.input b ~name:"V" ?dims:qkv_d Dtype.F32 qkv_shape in
  let mask =
    Builder.input b ~name:"mask" ?dims:mask_d Dtype.F32 (sh [ batch; 1; 1; seq ])
  in
  let s = Builder.matmul b ~transpose_b:true q k in
  let s = Builder.div b s (Builder.scalar_const b (Stdlib.sqrt (float_of_int d))) in
  let s = Builder.add b s mask in
  let p = Builder.softmax b ~axis:3 s in
  let o = Builder.matmul b p v in
  {
    graph = Builder.finalize b ~outputs:[ o ];
    data =
      [
        (q, Tensor.random ~seed Dtype.F32 qkv_shape);
        (k, Tensor.random ~seed:(seed + 1) Dtype.F32 qkv_shape);
        (v, Tensor.random ~seed:(seed + 2) Dtype.F32 qkv_shape);
        ( mask,
          Tensor.init Dtype.F32 (sh [ batch; 1; 1; seq ]) (fun idx ->
              (* mask out the tail tokens of each sequence *)
              if idx.(3) >= seq - (seq / 8) then -10000. else 0.) );
      ];
  }

let qk_scale = 0.08
let v_scale = 0.05
let p_scale = 1. /. 127.

let build_int8 ?(seed = 4321) ?batch_dim ?seq_dim ~batch ~seq ~hidden ~heads ()
    =
  let d = head_dim ~hidden ~heads in
  let b = Builder.create () in
  let qkv_shape = sh [ batch; heads; seq; d ] in
  let qkv_d, mask_d = qkv_dims ?batch_dim ?seq_dim ~batch ~seq ~heads ~d () in
  let qq = Builder.input b ~name:"Qq" ?dims:qkv_d Dtype.S8 qkv_shape in
  let kq = Builder.input b ~name:"Kq" ?dims:qkv_d Dtype.S8 qkv_shape in
  let vq = Builder.input b ~name:"Vq" ?dims:qkv_d Dtype.S8 qkv_shape in
  let mask =
    Builder.input b ~name:"mask" ?dims:mask_d Dtype.F32 (sh [ batch; 1; 1; seq ])
  in
  let qf = Builder.dequantize b ~scale:qk_scale ~zp:0 qq in
  let kf = Builder.dequantize b ~scale:qk_scale ~zp:0 kq in
  let s = Builder.matmul b ~transpose_b:true qf kf in
  let s = Builder.div b s (Builder.scalar_const b (Stdlib.sqrt (float_of_int d))) in
  let s = Builder.add b s mask in
  let p = Builder.softmax b ~axis:3 s in
  let pq = Builder.quantize b ~scale:p_scale ~zp:0 Dtype.S8 p in
  let pf = Builder.dequantize b ~scale:p_scale ~zp:0 pq in
  let vf = Builder.dequantize b ~scale:v_scale ~zp:0 vq in
  let o = Builder.matmul b pf vf in
  {
    graph = Builder.finalize b ~outputs:[ o ];
    data =
      [
        (qq, Tensor.random ~seed ~lo:(-40.) ~hi:40. Dtype.S8 qkv_shape);
        (kq, Tensor.random ~seed:(seed + 1) ~lo:(-40.) ~hi:40. Dtype.S8 qkv_shape);
        (vq, Tensor.random ~seed:(seed + 2) ~lo:(-40.) ~hi:40. Dtype.S8 qkv_shape);
        ( mask,
          Tensor.init Dtype.F32 (sh [ batch; 1; 1; seq ]) (fun idx ->
              if idx.(3) >= seq - (seq / 8) then -10000. else 0.) );
      ];
  }

let build_encoder_layer ?(seed = 9876) ~batch ~seq ~hidden ~heads () =
  let d = head_dim ~hidden ~heads in
  let b = Builder.create () in
  let qkv_shape = sh [ batch; heads; seq; d ] in
  let tokens = batch * seq in
  (* attention core on pre-projected heads *)
  let q = Builder.input b ~name:"Q" Dtype.F32 qkv_shape in
  let k = Builder.input b ~name:"K" Dtype.F32 qkv_shape in
  let v = Builder.input b ~name:"V" Dtype.F32 qkv_shape in
  (* the attention output re-folded to [tokens, hidden] arrives as a
     separate input for the residual stream *)
  let x = Builder.input b ~name:"x" Dtype.F32 (sh [ tokens; hidden ]) in
  let s = Builder.matmul b ~transpose_b:true q k in
  let s = Builder.div b s (Builder.scalar_const b (Stdlib.sqrt (float_of_int d))) in
  let p = Builder.softmax b ~axis:3 s in
  let o = Builder.matmul b p v in
  (* the head fold ([b,h,s,d] -> [tokens, hidden]) and the attention-out
     projection live between the two halves in a real model; for the
     subgraph benchmark the FFN half operates on the residual stream input
     [x] and the attention output is returned as is *)
  let mkw name seed_ shape =
    Builder.input b ~name ~const:true Dtype.F32 (sh shape)
    |> fun lt -> (lt, Tensor.random ~seed:seed_ ~lo:(-0.1) ~hi:0.1 Dtype.F32 (sh shape))
  in
  let w1, w1v = mkw "w_ffn1" (seed + 1) [ hidden; 4 * hidden ] in
  let w2, w2v = mkw "w_ffn2" (seed + 2) [ 4 * hidden; hidden ] in
  let mkv name seed_ n =
    Builder.input b ~name ~const:true Dtype.F32 (sh [ n ])
    |> fun lt -> (lt, Tensor.random ~seed:seed_ ~lo:0.7 ~hi:1.3 Dtype.F32 (sh [ n ]))
  in
  let g1, g1v = mkv "ln1_gamma" (seed + 3) hidden in
  let b1, b1v = mkv "ln1_beta" (seed + 4) hidden in
  let g2, g2v = mkv "ln2_gamma" (seed + 5) hidden in
  let b2, b2v = mkv "ln2_beta" (seed + 6) hidden in
  (* residual + layernorm, FFN with gelu, residual + layernorm *)
  let h = Builder.layernorm b ~epsilon:1e-5 ~x ~gamma:g1 ~beta:b1 in
  let ffn = Builder.matmul b (Builder.gelu b (Builder.matmul b h w1)) w2 in
  let y =
    Builder.layernorm b ~epsilon:1e-5 ~x:(Builder.add b h ffn) ~gamma:g2 ~beta:b2
  in
  {
    graph = Builder.finalize b ~outputs:[ o; y ];
    data =
      [
        (q, Tensor.random ~seed Dtype.F32 qkv_shape);
        (k, Tensor.random ~seed:(seed + 7) Dtype.F32 qkv_shape);
        (v, Tensor.random ~seed:(seed + 8) Dtype.F32 qkv_shape);
        (x, Tensor.random ~seed:(seed + 9) Dtype.F32 (sh [ tokens; hidden ]));
        (w1, w1v); (w2, w2v); (g1, g1v); (b1, b1v); (g2, g2v); (b2, b2v);
      ];
  }
