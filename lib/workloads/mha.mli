open Gc_tensor
open Gc_graph_ir

(** Multi-Head Attention subgraph builders (the paper's second target
    workload): the scaled dot-product attention core of BERT-style models —
    two batch matmuls with a softmax and the binary scale/mask ops between
    them:

    O = softmax(Q·Kᵀ / √d + mask) · V

    Q, K, V are [batch, heads, seq, head_dim]; the int8 variant quantizes
    all three inputs and the attention probabilities symmetrically
    (zero point 0), the usual scheme for attention. *)

type built = {
  graph : Graph.t;
  data : (Logical_tensor.t * Tensor.t) list;
}

(** [batch_dim]/[seq_dim] mark the batch and sequence axes symbolic for
    shape-polymorphic compilation ([batch]/[seq] stay the representative
    sizes and the synthetic data's actual extent). Note for bucketed
    execution: the batch axis is row-independent and safe to pad; the seq
    axis feeds softmax and must NOT be bucket-padded — exclude it from
    [Core.compile_poly]'s [bucket_syms] so it specializes per exact
    length. *)
val build_f32 :
  ?seed:int ->
  ?batch_dim:Dim.t ->
  ?seq_dim:Dim.t ->
  batch:int ->
  seq:int ->
  hidden:int ->
  heads:int ->
  unit ->
  built

val build_int8 :
  ?seed:int ->
  ?batch_dim:Dim.t ->
  ?seq_dim:Dim.t ->
  batch:int ->
  seq:int ->
  hidden:int ->
  heads:int ->
  unit ->
  built

(** A full BERT-style encoder layer on pre-projected Q/K/V: scaled
    dot-product attention, residual + layernorm, a gelu FFN
    (hidden -> 4*hidden -> hidden), and the second residual + layernorm.
    Exercises every complex op the compiler decomposes, both template
    kinds, and the constant-weight machinery in one graph. Operates on
    [batch*seq, hidden] for the FFN part (heads folded back). *)
val build_encoder_layer :
  ?seed:int -> batch:int -> seq:int -> hidden:int -> heads:int -> unit -> built
