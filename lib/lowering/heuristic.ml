open Gc_tensor
open Gc_microkernel

let acc_elems_per_line machine (dtype : Dtype.t) =
  let acc_size = match dtype with S8 | U8 -> 4 | _ -> 4 in
  machine.Machine.cache_line / acc_size

let cost ~machine (p : Params.t) =
  let uk =
    Ukernel_cost.cost ~machine ~dtype:p.dtype ~mb:p.mb ~nb:p.nb ~kb:p.kb
      ~bs:p.bs
  in
  let msn = Params.msn p and nsn = Params.nsn p in
  let ksteps = Params.ksteps_per_slice p in
  (* single-core kernel: microkernel invocations over padded blocks (one
     k-slice's worth when k-slicing is on) *)
  let compute = float_of_int (msn * nsn * ksteps) *. uk.cycles in
  (* C' zero + accumulate + the post-anchor writeback chain: the vectorized
     per-element cost of guards, index arithmetic and the eltwise chain
     (calibrated against the Tensor IR cost model) plus the L1 traffic *)
  let line = float_of_int (acc_elems_per_line machine p.dtype) in
  let c_elems = float_of_int (msn * nsn * p.mb * p.nb) in
  let c_traffic =
    (c_elems *. 0.6) +. (3. *. c_elems /. line *. machine.Machine.l1_latency)
  in
  (* one pass of the A and B panels from L2 per core *)
  let esize = float_of_int (Dtype.size_bytes p.dtype) in
  let a_bytes = float_of_int (msn * p.mb * Params.k_pad p) *. esize in
  let b_bytes = float_of_int (nsn * p.nb * Params.k_pad p) *. esize in
  let panel_traffic =
    (a_bytes +. b_bytes)
    /. float_of_int machine.Machine.cache_line
    *. machine.Machine.l2_latency
  in
  let per_task = compute +. c_traffic +. panel_traffic in
  (* waves: tasks may exceed cores *)
  let tasks = if p.batch > 1 then p.batch else p.mpn * p.npn * p.kpn in
  let waves = Shape.ceil_div tasks machine.Machine.cores in
  (* k-slicing pays a second parallel phase summing the partial Cs *)
  let reduction_phase =
    if p.kpn <= 1 then 0.
    else begin
      let elems = float_of_int (Params.m_pad p * Params.n_pad p) in
      let cpart_bytes = int_of_float elems * p.kpn * 4 in
      let per_line =
        if cpart_bytes <= machine.Machine.l2_size then machine.Machine.l2_latency
        else machine.Machine.llc_latency
      in
      let per_elem = per_line /. float_of_int (acc_elems_per_line machine p.dtype) in
      (elems *. float_of_int (p.kpn + 1) *. per_elem
      /. float_of_int machine.Machine.cores)
      +. machine.Machine.barrier_cycles
    end
  in
  (float_of_int waves *. per_task) +. reduction_phase
  +. machine.Machine.barrier_cycles

let grid_candidates ~cores =
  let divisor_splits c =
    List.filter_map
      (fun p -> if c mod p = 0 then Some (p, c / p) else None)
      (List.init c (fun i -> i + 1))
  in
  let base = divisor_splits cores in
  let half = if cores >= 2 then divisor_splits (cores / 2) else [] in
  let extra = [ (1, 1); (1, cores); (cores, 1) ] in
  List.sort_uniq compare (base @ half @ extra)

let tile_candidates ~machine ~dtype =
  (* Candidates are expressed in units of the kernel's register tile so the
     search space stays aligned with what Brgemm executes at full rate
     (Ukernel_cost.u_tile penalizes ragged blocks); mb = 1 is kept for
     skinny problems that cannot fill even one tile row. *)
  let tm = Ukernel_cost.tile_m and tn = Ukernel_cost.tile_n in
  let mbs = [ 1; tm; 2 * tm; 3 * tm; 4 * tm; 6 * tm; 8 * tm; 16 * tm ] in
  let nbs = [ 4 * tn; 8 * tn; 12 * tn; 16 * tn ] in
  let kbs = [ 16; 32; 64 ] in
  let bss = [ 1; 2; 4 ] in
  List.concat_map
    (fun mb ->
      List.concat_map
        (fun nb ->
          List.concat_map
            (fun kb ->
              List.filter_map
                (fun bs ->
                  if Ukernel_cost.valid ~machine ~dtype ~mb ~nb ~kb ~bs then
                    Some (mb, nb, kb, bs)
                  else None)
                bss)
            kbs)
        nbs)
    mbs

type tuned_lookup =
  machine:Machine.t ->
  dtype:Dtype.t ->
  batch:int ->
  allow_kslice:bool ->
  m:int ->
  n:int ->
  k:int ->
  tune_key:string ->
  Params.t option

let tuned_lookup : tuned_lookup option ref = ref None
let set_tuned_lookup f = tuned_lookup := Some f

let choose ~machine ~dtype ?(batch = 1) ?force_grid ?force_tile ?mb_fixed
    ?kb_fixed ?(allow_kslice = true) ?tune_key ~m ~n ~k () =
  if m <= 0 || n <= 0 || k <= 0 then invalid_arg "Heuristic.choose: bad problem size";
  (* a constrained search must honour its constraints, not a DB entry
     recorded for the free problem *)
  let unconstrained =
    force_grid = None && force_tile = None && mb_fixed = None && kb_fixed = None
  in
  let tuned =
    match (tune_key, !tuned_lookup) with
    | Some key, Some f when unconstrained ->
        f ~machine ~dtype ~batch ~allow_kslice ~m ~n ~k ~tune_key:key
    | _ -> None
  in
  match tuned with
  | Some p -> p
  | None ->
  (* static model below *)
  let grids =
    match force_grid with
    | Some g -> [ g ]
    | None ->
        if batch > 1 then [ (1, 1) ]
        else grid_candidates ~cores:machine.Machine.cores
  in
  let tiles =
    match force_tile with
    | Some t -> [ t ]
    | None ->
        tile_candidates ~machine ~dtype
        |> List.filter (fun (mb, _, kb, _) ->
               (match mb_fixed with Some v -> mb = v | None -> true)
               && match kb_fixed with Some v -> kb = v | None -> true)
  in
  if tiles = [] then invalid_arg "Heuristic.choose: no valid microkernel tiles";
  let mk ?(kpn = 1) (mpn, npn) (mb, nb, kb, bs) =
    {
      Params.m;
      n;
      k;
      batch;
      dtype;
      mpn;
      npn;
      kpn;
      mb;
      nb;
      kb;
      bs;
      loop_order = "msi,ksi,nsi";
    }
  in
  (* the k-slicing template variant: extra reduction-axis parallelism for
     problems whose m/n grid cannot occupy the cores *)
  let kpns =
    if batch > 1 || force_grid <> None || not allow_kslice then [ 1 ]
    else [ 1; 2; 4; 8 ]
  in
  let best = ref None in
  List.iter
    (fun grid ->
      List.iter
        (fun tile ->
          List.iter
            (fun kpn ->
              let p = mk ~kpn grid tile in
              (* skip grids with entirely idle rows/columns of cores, and
                 k-slicings with nothing to slice or oversubscription *)
              let sensible =
                (p.mpn <= Params.mblocks p || p.mpn = 1)
                && (p.npn <= Params.nblocks p || p.npn = 1)
                && (kpn = 1
                   || (Params.ksteps p >= 2 * kpn
                      && p.mpn * p.npn * kpn <= 2 * machine.Machine.cores
                      && p.mpn * p.npn < machine.Machine.cores))
              in
              if sensible then begin
                let c = cost ~machine p in
                match !best with
                | Some (c0, _) when c0 <= c -> ()
                | _ -> best := Some (c, p)
              end)
            kpns)
        tiles)
    grids;
  match !best with
  | Some (_, p) -> p
  | None -> mk (List.hd grids) (List.hd tiles)

let choose_conv ~machine ~dtype ?tune_key ~batch ~oh ~ow ~oc ~kh ~kw ~c () =
  (* im2col GEMM view of the convolution: every output pixel is a GEMM row,
     every output channel a column, the receptive field the k axis. The
     k-sliced template variant is excluded — its partial-C reduction phase
     assumes the plain 2-D packing path, not the conv gather. *)
  if batch <= 0 || oh <= 0 || ow <= 0 || oc <= 0 || kh <= 0 || kw <= 0 || c <= 0
  then invalid_arg "Heuristic.choose_conv: bad conv geometry";
  choose ~machine ~dtype ~allow_kslice:false ?tune_key ~m:(batch * oh * ow)
    ~n:oc ~k:(kh * kw * c) ()
