open Gc_tensor
open Gc_microkernel

(** The expert-tuned parameter heuristic (paper §"Microkernel-Based
    Template"): for a given matmul problem it

    + proposes single-core-kernel decompositions — a set of [MPN, NPN]
      core grids with good load balance;
    + proposes microkernel tiles — a set of [MB, NB, KB, BS] that are
      multiples of the vector width, fit L1 and keep the register file
      busy ({!Ukernel_cost.valid});
    + searches the cross product with a cost model combining multi-core
      load balance and single-core kernel efficiency, and reports the
      loop ordering it assumed.

    The cost model is also exported so the performance simulator and the
    ablation benches can re-cost a forced parameter choice. *)

(** Estimated cycles for executing the whole Tunable OP with [params] on
    [machine]: per-core microkernel work (padded block arithmetic — ragged
    dimensions pay for their padding), C-accumulator traffic, load
    imbalance across the core grid, and one barrier. *)
val cost : machine:Machine.t -> Params.t -> float

(** Candidate core grids for [cores] cores ([MPN × NPN ≤ cores], every
    divisor split plus undersubscribed grids for small problems). *)
val grid_candidates : cores:int -> (int * int) list

(** Candidate microkernel tiles for a dtype, already filtered by
    {!Ukernel_cost.valid}. *)
val tile_candidates :
  machine:Machine.t -> dtype:Dtype.t -> (int * int * int * int) list

(** Consultation hook for measured autotuning (PR 8): called by {!choose}
    before the static search when a [tune_key] is supplied and the choice
    is unconstrained. [Some params] short-circuits the search (a tuning-DB
    hit); [None] falls through to the static model. Installed by
    [Gc_tuning.Autotune] at link time — the indirection keeps the lowering
    layer free of a dependency on the tuner (which itself needs the
    lowering layer's cost model). *)
type tuned_lookup =
  machine:Machine.t ->
  dtype:Dtype.t ->
  batch:int ->
  allow_kslice:bool ->
  m:int ->
  n:int ->
  k:int ->
  tune_key:string ->
  Params.t option

val set_tuned_lookup : tuned_lookup -> unit

(** [choose ~machine ~dtype ~m ~n ~k ()] returns the best parameters.
    [tune_key] identifies the partition for the autotuning hook (shape
    class, op, dtype, post-op chain, machine); it is consulted only when
    none of the constraining arguments below are given — a constrained
    search (ablation or neighbour-aligned retry) must honour its
    constraints, not a tuned entry recorded for the free problem.
    [batch] > 1 selects the batched-matmul template: the core grid
    parallelizes over batch instead of the m/n plane (mpn = npn = 1) and
    the per-task problem is the single [m × n × k] matmul.
    [force_grid]/[force_tile] pin dimensions for ablation studies;
    [mb_fixed]/[kb_fixed] constrain the search to aligned tiles (used by
    layout propagation and coarse-grain fusion to match a neighbour's
    blocking). [allow_kslice:false] excludes the k-sliced template variant
    (kpn is pinned to 1) for lowerings that do not support its partial-C
    reduction phase. Raises [Invalid_argument] if the constraints leave no
    valid tile. *)
val choose :
  machine:Machine.t ->
  dtype:Dtype.t ->
  ?batch:int ->
  ?force_grid:int * int ->
  ?force_tile:int * int * int * int ->
  ?mb_fixed:int ->
  ?kb_fixed:int ->
  ?allow_kslice:bool ->
  ?tune_key:string ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  Params.t

(** Tile selection for a Conv2d lowered through im2col: the GEMM problem is
    [m = batch·OH·OW, n = OC, k = KH·KW·C]. K-slicing is excluded — the
    conv A-packing gather only exists in the plain template. *)
val choose_conv :
  machine:Machine.t ->
  dtype:Dtype.t ->
  ?tune_key:string ->
  batch:int ->
  oh:int ->
  ow:int ->
  oc:int ->
  kh:int ->
  kw:int ->
  c:int ->
  unit ->
  Params.t
