open Gc_tensor
open Gc_graph_ir
open Gc_tensor_ir

let tag_counter = Atomic.make 1
let fresh_tag () = Atomic.fetch_and_add tag_counter 1

type tensors = {
  tmap : Logical_tensor.t -> Ir.tensor option;
  locals : (int, Ir.tensor) Hashtbl.t;
}

let resolve ts (lt : Logical_tensor.t) =
  match ts.tmap lt with
  | Some t -> t
  | None -> (
      match Hashtbl.find_opt ts.locals lt.id with
      | Some t -> t
      | None ->
          let t = Index_map.tir_tensor ~name:(lt.name ^ "_tmp") ~storage:Ir.Local lt in
          Hashtbl.add ts.locals lt.id t;
          t)

let iv name = Ir.fresh_var ~name Ir.Index

(* Nested loops over a logical shape; [body point] receives the index
   expressions. The outermost loop is parallel and carries [tag]. *)
let loops_over ?tag shape body =
  let rank = Shape.rank shape in
  if rank = 0 then body [||]
  else begin
    let vars = Array.init rank (fun i -> iv (Printf.sprintf "i%d" i)) in
    let point = Array.map Ir.v vars in
    let rec build i =
      if i = rank then body point
      else
        [
          Ir.For
            {
              v = vars.(i);
              lo = Ir.Int 0;
              hi = Ir.Int (Shape.dim shape i);
              step = Ir.Int 1;
              body = build (i + 1);
              parallel = i = 0;
              merge_tag = (if i = 0 then tag else None);
            };
        ]
    in
    build 0
  end

(* One loop nest per op. Eltwise/movement ops evaluate a one-op chain at
   each point of their output; reductions run an inner accumulator loop. *)
let lower_op ts ?tag (op : Op.t) =
  let out = Op.output op in
  match op.kind with
  | Reduce rkind ->
      let input = List.hd op.inputs in
      let in_rank = Shape.rank input.shape in
      let axis =
        let a = Attrs.int_exn op.attrs "axis" in
        if a < 0 then a + in_rank else a
      in
      let keepdims = Option.value (Attrs.get_bool op.attrs "keepdims") ~default:false in
      let red_n = Shape.dim input.shape axis in
      loops_over ?tag out.shape (fun opoint ->
          let kv = iv "r" in
          (* input point: insert the reduction index at [axis] *)
          let ipoint =
            Array.init in_rank (fun i ->
                if i = axis then Ir.v kv
                else if keepdims then opoint.(i)
                else if i < axis then opoint.(i)
                else opoint.(i - 1))
          in
          let acc = Ir.fresh_var ~name:"acc" (Ir.Scalar Dtype.F32) in
          let init : Ir.expr =
            match rkind with
            | Sum | Mean -> Ir.Float 0.
            | Max -> Ir.Float neg_infinity
            | Min -> Ir.Float infinity
          in
          let src, sidx = Index_map.access (resolve ts) input ipoint in
          let combine : Ir.expr =
            let load = Ir.Load (src, sidx) in
            match rkind with
            | Sum | Mean -> Ir.Binop (Ir.Add, Ir.v acc, load)
            | Max -> Ir.Binop (Ir.Max, Ir.v acc, load)
            | Min -> Ir.Binop (Ir.Min, Ir.v acc, load)
          in
          let final : Ir.expr =
            match rkind with
            | Mean -> Ir.Binop (Ir.Div, Ir.v acc, Ir.Float (float_of_int red_n))
            | _ -> Ir.v acc
          in
          let dst, didx = Index_map.access (resolve ts) out opoint in
          [
            Ir.Assign (acc, init);
            Ir.For
              {
                v = kv;
                lo = Ir.Int 0;
                hi = Ir.Int red_n;
                step = Ir.Int 1;
                body = [ Ir.Assign (acc, combine) ];
                parallel = false;
                merge_tag = None;
              };
            Ir.Store (dst, didx, final);
          ])
  | Transpose ->
      let input = List.hd op.inputs in
      let perm = Array.of_list (Attrs.ints_exn op.attrs "perm") in
      loops_over ?tag out.shape (fun opoint ->
          let ipoint = Array.make (Array.length perm) (Ir.Int 0) in
          Array.iteri (fun i p -> ipoint.(p) <- opoint.(i)) perm;
          let src, sidx = Index_map.access (resolve ts) input ipoint in
          let dst, didx = Index_map.access (resolve ts) out opoint in
          [ Ir.Store (dst, didx, Ir.Load (src, sidx)) ])
  | Matmul | Conv2d ->
      invalid_arg "Lower_fusible: tunable ops must be lowered by the template"
  | Reshape ->
      (* row-major flat reinterpretation: flatten the output point, then
         peel input coordinates off the linear offset with div/mod *)
      let input = List.hd op.inputs in
      let in_dims = Shape.to_array input.shape in
      loops_over ?tag out.shape (fun opoint ->
          let flat = Ir.linear_index (Shape.to_array out.shape) opoint in
          let fv = iv "flat" in
          let in_rank = Array.length in_dims in
          let ipoint = Array.make (Stdlib.max in_rank 1) (Ir.Int 0) in
          let rem = ref (Ir.v fv) in
          for i = in_rank - 1 downto 0 do
            if i = 0 then ipoint.(0) <- !rem
            else begin
              ipoint.(i) <- Ir.Binop (Ir.Mod, !rem, Ir.Int in_dims.(i));
              rem := Ir.Binop (Ir.Div, !rem, Ir.Int in_dims.(i))
            end
          done;
          let ipoint = if in_rank = 0 then [||] else ipoint in
          let src, sidx = Index_map.access (resolve ts) input ipoint in
          let dst, didx = Index_map.access (resolve ts) out opoint in
          [ Ir.Assign (fv, flat); Ir.Store (dst, didx, Ir.Load (src, sidx)) ])
  | Gather ->
      (* out[i..., j...] = data[indices[i...], j...]; the row index is a
         runtime Load, truncated to int by the executors *)
      let data = List.nth op.inputs 0 in
      let indices = List.nth op.inputs 1 in
      let irank = Shape.rank indices.shape in
      let drank = Shape.rank data.shape in
      loops_over ?tag out.shape (fun opoint ->
          let isrc, iidx =
            Index_map.access (resolve ts) indices (Array.sub opoint 0 irank)
          in
          let row = iv "row" in
          let dpoint =
            Array.init drank (fun i ->
                if i = 0 then Ir.v row
                else opoint.(irank + i - 1))
          in
          let src, sidx = Index_map.access (resolve ts) data dpoint in
          let dst, didx = Index_map.access (resolve ts) out opoint in
          [
            Ir.Assign (row, Ir.Load (isrc, iidx));
            Ir.Store (dst, didx, Ir.Load (src, sidx));
          ])
  | Softmax ->
      (* the tuned softmax kernel (primitives-baseline path): three sweeps
         per row — max, exp+sum, normalize — over the last axis *)
      let input = List.hd op.inputs in
      let rank = Shape.rank input.shape in
      let axis =
        let a = Attrs.int_exn op.attrs "axis" in
        if a < 0 then a + rank else a
      in
      if axis <> rank - 1 then
        invalid_arg "Lower_fusible: softmax must be over the last axis";
      let n = Shape.dim input.shape (rank - 1) in
      let outer = Shape.sub input.shape 0 (rank - 1) in
      loops_over ?tag outer (fun opoint ->
          let c = iv "c" in
          let point = Array.append opoint [| Ir.v c |] in
          let src, sidx = Index_map.access (resolve ts) input point in
          let dst, didx = Index_map.access (resolve ts) out point in
          let rmax = Ir.fresh_var ~name:"rmax" (Ir.Scalar Dtype.F32) in
          let rsum = Ir.fresh_var ~name:"rsum" (Ir.Scalar Dtype.F32) in
          let loop body =
            Ir.For
              {
                v = c; lo = Ir.Int 0; hi = Ir.Int n; step = Ir.Int 1;
                body; parallel = false; merge_tag = None;
              }
          in
          [
            Ir.Assign (rmax, Ir.Float neg_infinity);
            loop [ Ir.Assign (rmax, Ir.Binop (Ir.Max, Ir.v rmax, Ir.Load (src, sidx))) ];
            Ir.Assign (rsum, Ir.Float 0.);
            loop
              [
                Ir.Store
                  ( dst, didx,
                    Ir.Unop (Ir.Exp, Ir.Binop (Ir.Sub, Ir.Load (src, sidx), Ir.v rmax)) );
                Ir.Assign (rsum, Ir.Binop (Ir.Add, Ir.v rsum, Ir.Load (dst, didx)));
              ];
            loop
              [ Ir.Store (dst, didx, Ir.Binop (Ir.Div, Ir.Load (dst, didx), Ir.v rsum)) ];
          ])
  | _ ->
      loops_over ?tag out.shape (fun opoint ->
          let chain = Chain.create ~tmap:(resolve ts) ~point:opoint in
          let v = Chain.apply chain op in
          let dst, didx = Index_map.access (resolve ts) out opoint in
          [ Ir.Store (dst, didx, v) ])

let lower ~tmap (f : Fused_op.t) =
  let ts = { tmap; locals = Hashtbl.create 16 } in
  let ops = Fused_op.ops f in
  (* Tag runs of eltwise ops with identical output shapes as mergeable. *)
  let rec assign_tags = function
    | [] -> []
    | (op : Op.t) :: rest ->
        let shape = (Op.output op).shape in
        let mergeable (o : Op.t) =
          Op_kind.is_fusible o.kind
          && (match o.kind with Reduce _ -> false | _ -> true)
          && Shape.equal (Op.output o).shape shape
        in
        if mergeable op then begin
          let run, rest' =
            let rec take acc = function
              | o :: tl when mergeable o -> take (o :: acc) tl
              | tl -> (List.rev acc, tl)
            in
            take [] rest
          in
          match run with
          | [] -> (op, None) :: assign_tags rest
          | _ ->
              let tag = fresh_tag () in
              ((op, Some tag) :: List.map (fun o -> (o, Some tag)) run)
              @ assign_tags rest'
        end
        else (op, None) :: assign_tags rest
  in
  let body =
    List.concat_map (fun (op, tag) -> lower_op ts ?tag op) (assign_tags ops)
  in
  let local_allocs = Hashtbl.fold (fun _ t acc -> Ir.Alloc t :: acc) ts.locals [] in
  let params =
    let seen = Hashtbl.create 8 in
    List.filter_map ts.tmap (f.f_inputs @ f.f_outputs)
    |> List.filter (fun (t : Ir.tensor) ->
           match t.storage with
           | Ir.Param ->
               if Hashtbl.mem seen t.tid then false
               else begin
                 Hashtbl.add seen t.tid ();
                 true
               end
           | _ -> false)
    |> List.map (fun t -> Ir.Ptensor t)
  in
  { Ir.fname = f.fname; params; body = local_allocs @ body }
