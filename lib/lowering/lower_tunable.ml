open Gc_tensor
open Gc_graph_ir
open Gc_tensor_ir

let iv name = Ir.fresh_var ~name Ir.Index

let for_ ?(parallel = false) ?tag v lo hi body =
  Ir.For { v; lo; hi; step = Ir.Int 1; body; parallel; merge_tag = tag }

let acc_dtype (dt : Dtype.t) : Dtype.t =
  match dt with S8 | U8 -> S32 | Bf16 -> F32 | d -> d

let ( +: ) a b = Ir.Binop (Ir.Add, a, b)
let ( -: ) a b = Ir.Binop (Ir.Sub, a, b)
let ( *: ) a b = Ir.Binop (Ir.Mul, a, b)
let ( <: ) a b = Ir.Binop (Ir.Lt, a, b)
let ( >=: ) a b = Ir.Binop (Ir.Ge, a, b)
let ( &&: ) a b = Ir.Binop (Ir.And, a, b)

(* Peel the coordinates of a flat row-major index off [expr] by div/mod
   against [dims] (innermost dimension varies fastest). *)
let decompose_flat expr dims =
  let r = Array.length dims in
  let exprs = Array.make r (Ir.Int 0) in
  let rem = ref expr in
  for i = r - 1 downto 0 do
    if i = 0 then exprs.(0) <- !rem
    else begin
      exprs.(i) <- Ir.Binop (Ir.Mod, !rem, Ir.Int dims.(i));
      rem := Ir.Binop (Ir.Div, !rem, Ir.Int dims.(i))
    end
  done;
  exprs

(* A total tensor map: externals resolve through [tmap]; internal logical
   tensors get function-local plain tensors, created on demand (the
   "temporary tensors introduced by fusion" the paper's Tensor IR
   optimizations then shrink). *)
type tensors = {
  tmap : Logical_tensor.t -> Ir.tensor option;
  locals : (int, Ir.tensor) Hashtbl.t;
}

let resolve ts (lt : Logical_tensor.t) =
  match ts.tmap lt with
  | Some t -> t
  | None -> (
      match Hashtbl.find_opt ts.locals lt.id with
      | Some t -> t
      | None ->
          let t =
            Index_map.tir_tensor ~name:(lt.name ^ "_tmp") ~storage:Ir.Local lt
          in
          Hashtbl.add ts.locals lt.id t;
          t)

(* Split a post-op list into reduction segments: ([eltwise...], Some reduce)
   pairs plus a trailing ([eltwise...], None). *)
let split_segments ops =
  let rec go acc cur = function
    | [] -> List.rev ((List.rev cur, None) :: acc)
    | (op : Op.t) :: rest -> (
        match op.kind with
        | Reduce _ -> go ((List.rev cur, Some op) :: acc) [] rest
        | _ -> go acc (op :: cur) rest)
  in
  go [] [] ops

let reduce_init (k : Op_kind.reduce_kind) =
  match k with
  | Sum | Mean -> Ir.Float 0.
  | Max -> Ir.Float neg_infinity
  | Min -> Ir.Float infinity

let reduce_combine (k : Op_kind.reduce_kind) acc v =
  match k with
  | Sum | Mean -> Ir.Binop (Ir.Add, acc, v)
  | Max -> Ir.Binop (Ir.Max, acc, v)
  | Min -> Ir.Binop (Ir.Min, acc, v)

let lower ~tmap (f : Fused_op.t) =

  let p =
    match f.params with
    | Some p -> p
    | None -> invalid_arg "Lower_tunable: fused op has no template parameters"
  in
  let tun =
    match f.tunable with
    | Some t -> t
    | None -> invalid_arg "Lower_tunable: fused op has no tunable op"
  in
  let a_in, b_in =
    match tun.inputs with [ a; b ] -> (a, b) | _ -> assert false
  in
  let c_lt = Op.output tun in
  let transpose_b =
    Option.value (Attrs.get_bool tun.attrs "transpose_b") ~default:false
  in
  let a_src = match f.pre_a with Some (op, _) -> List.hd op.inputs | None -> a_in in
  let b_src = match f.pre_b with Some (op, _) -> List.hd op.inputs | None -> b_in in
  (* Conv2d rides the same template through its im2col GEMM view: the
     packing anchors perform the gather, everything downstream (microkernel,
     writeback anchors) sees a plain [m=N·OH·OW, n=OC, k=KH·KW·C] matmul. *)
  let conv =
    match tun.kind with
    | Op_kind.Conv2d -> (
        match Infer.conv_attrs tun.attrs with
        | Ok v -> Some v
        | Error e -> invalid_arg ("Lower_tunable: " ^ e))
    | _ -> None
  in
  let c_rank = Shape.rank c_lt.shape in
  let batched = c_rank > 2 && conv = None in
  let batch_dims =
    if batched then Shape.sub c_lt.shape 0 (c_rank - 2) else Shape.scalar
  in
  (match conv with
  | None -> ()
  | Some _ ->
      let cs = Shape.to_array c_lt.shape and ws = Shape.to_array b_src.shape in
      if
        p.m <> cs.(0) * cs.(1) * cs.(2)
        || p.n <> cs.(3)
        || p.k <> ws.(0) * ws.(1) * ws.(2)
      then
        invalid_arg
          "Lower_tunable: template parameters disagree with the conv's im2col \
           GEMM view");
  let m = p.m and n = p.n and k = p.k in
  let mblocks = Params.mblocks p
  and nblocks = Params.nblocks p
  and kblocks = Params.kblocks p in
  let msn = Params.msn p and nsn = Params.nsn p and ksteps = Params.ksteps p in
  let mb = p.mb and nb = p.nb and kb = p.kb and bs = p.bs in
  let padded = Params.m_pad p > m || Params.n_pad p > n || Params.k_pad p > k in
  let ts = { tmap; locals = Hashtbl.create 16 } in

  (* Direct blocked access is possible when the source already carries the
     template's blocked layout (layout propagation arranged it). *)
  let a_direct =
    conv = None
    && (not batched) && (not transpose_b)
    && Layout.equal a_src.layout (Params.a_layout p)
  in
  let b_direct =
    conv = None
    && (not batched) && (not transpose_b)
    && Layout.equal b_src.layout (Params.b_layout p)
  in

  (* Loop variables *)
  let mpi = iv "mpi" and npi = iv "npi" and bi = iv "bi" in
  let msi = iv "msi" and nsi = iv "nsi" and ks = iv "ksi" in
  let mpsi = iv "mpsi" and npsi = iv "npsi" in
  let mbi = iv "mbi" and nbi = iv "nbi" in

  (* Batch index expressions of the output space, decomposed from the flat
     batch loop variable. *)
  let out_batch =
    if not batched then [||]
    else begin
      let dims = Shape.to_array batch_dims in
      let r = Array.length dims in
      let exprs = Array.make r (Ir.Int 0) in
      let rem = ref (Ir.v bi) in
      for i = r - 1 downto 0 do
        if i = 0 then exprs.(0) <- !rem
        else begin
          exprs.(i) <- Ir.Binop (Ir.Mod, !rem, Ir.Int dims.(i));
          rem := Ir.Binop (Ir.Div, !rem, Ir.Int dims.(i))
        end
      done;
      exprs
    end
  in
  (* Map the output batch point into an operand's (possibly broadcast)
     batch dims, then append the two inner coordinates. *)
  let operand_index (lt : Logical_tensor.t) i1 i2 =
    let r = Shape.rank lt.shape in
    let nbdims = r - 2 in
    let ob = Array.length out_batch in
    Array.init r (fun i ->
        if i < nbdims then
          if Shape.dim lt.shape i = 1 then Ir.Int 0
          else out_batch.(ob - nbdims + i)
        else if i = nbdims then i1
        else i2)
  in

  (* Local buffers of the single-core kernel *)
  let acc_dt = acc_dtype a_src.dtype in
  let cacc = Ir.fresh_tensor ~name:"Cacc" ~storage:Ir.Local acc_dt [| nsn; mb; nb |] in
  let apack =
    if a_direct then None
    else Some (Ir.fresh_tensor ~name:"Apack" ~storage:Ir.Local a_src.dtype [| bs; mb; kb |])
  in
  let bpack =
    if b_direct then None
    else
      Some
        (Ir.fresh_tensor ~name:"Bpack" ~storage:Ir.Local b_src.dtype
           [| kblocks; nblocks; nb; kb |])
  in

  (* ---- pre-op packing loops (the pre anchors) ---- *)
  (* Pack one [bs_eff, MB, KB] slab of A at pre anchor #4. *)
  let bs_eff =
    Ir.Binop
      (Ir.Min, Ir.Int bs, Ir.Binop (Ir.Sub, Ir.Int kblocks, Ir.v ks *: Ir.Int bs))
  in
  let pack_a =
    match (apack, conv) with
    | None, _ -> []
    | Some ap, Some ((sh, sw), (pt, pl, _, _), (dh, dw)) ->
        (* im2col gather (pre anchor #4): decompose the GEMM row into the
           output pixel (n, oh, ow) and the GEMM column into the receptive
           field tap (kh, kw, c), then load x[n, oh·sh−pt+kh·dh,
           ow·sw−pl+kw·dw, c]. Always guarded: conv padding makes taps fall
           outside the input even when the GEMM itself is unpadded. *)
        let xs = Shape.to_array a_src.shape in
        let ws = Shape.to_array b_src.shape in
        let cs = Shape.to_array c_lt.shape in
        let bb = iv "bb" and i = iv "i" and j = iv "j" in
        let arv = iv "arow" and acv = iv "acol" in
        let arow = (Ir.v mpsi *: Ir.Int mb) +: Ir.v i in
        let acol = ((Ir.v ks *: Ir.Int bs) +: Ir.v bb) *: Ir.Int kb +: Ir.v j in
        let opix = decompose_flat (Ir.v arv) [| cs.(0); cs.(1); cs.(2) |] in
        let tap = decompose_flat (Ir.v acv) [| ws.(0); ws.(1); ws.(2) |] in
        let ihv = iv "ih" and iwv = iv "iw" in
        let dst = [| Ir.v bb; Ir.v i; Ir.v j |] in
        let src_idx = [| opix.(0); Ir.v ihv; Ir.v iwv; tap.(2) |] in
        let src_idx =
          Index_map.physical a_src.layout ~rank:4 src_idx
        in
        let load = Ir.Load (resolve ts a_src, src_idx) in
        let valid =
          Ir.v arv <: Ir.Int m
          &&: (Ir.v acv <: Ir.Int k)
          &&: (Ir.v ihv >=: Ir.Int 0)
          &&: (Ir.v ihv <: Ir.Int xs.(1))
          &&: (Ir.v iwv >=: Ir.Int 0)
          &&: (Ir.v iwv <: Ir.Int xs.(2))
        in
        let body =
          [
            Ir.Assign (arv, arow);
            Ir.Assign (acv, acol);
            Ir.Assign
              (ihv, (opix.(1) *: Ir.Int sh) +: (tap.(0) *: Ir.Int dh) -: Ir.Int pt);
            Ir.Assign
              (iwv, (opix.(2) *: Ir.Int sw) +: (tap.(1) *: Ir.Int dw) -: Ir.Int pl);
            Ir.If
              (valid, [ Ir.Store (ap, dst, load) ],
               [ Ir.Store (ap, dst, Ir.Float 0.) ]);
          ]
        in
        [
          for_ bb (Ir.Int 0) bs_eff
            [ for_ i (Ir.Int 0) (Ir.Int mb) [ for_ j (Ir.Int 0) (Ir.Int kb) body ] ];
        ]
    | Some ap, None ->
        let bb = iv "bb" and i = iv "i" and j = iv "j" in
        let arow = (Ir.v mpsi *: Ir.Int mb) +: Ir.v i in
        let acol = ((Ir.v ks *: Ir.Int bs) +: Ir.v bb) *: Ir.Int kb +: Ir.v j in
        let src_idx = operand_index a_src arow acol in
        let src_idx = Index_map.physical a_src.layout ~rank:(Shape.rank a_src.shape) src_idx in
        let dst = [| Ir.v bb; Ir.v i; Ir.v j |] in
        let load = Ir.Load (resolve ts a_src, src_idx) in
        let body =
          if padded then
            [
              Ir.If
                ( arow <: Ir.Int m &&: (acol <: Ir.Int k),
                  [ Ir.Store (ap, dst, load) ],
                  [ Ir.Store (ap, dst, Ir.Float 0.) ] );
            ]
          else [ Ir.Store (ap, dst, load) ]
        in
        [
          for_ bb (Ir.Int 0) bs_eff
            [ for_ i (Ir.Int 0) (Ir.Int mb) [ for_ j (Ir.Int 0) (Ir.Int kb) body ] ];
        ]
  in
  (* Pack the whole B panel once per task at pre anchor #2. *)
  let pack_b =
    match bpack with
    | None -> []
    | Some bp ->
        let kbi = iv "kbi" and nbj = iv "nbj" and jn = iv "jn" and jk = iv "jk" in
        let kk = (Ir.v kbi *: Ir.Int kb) +: Ir.v jk in
        let nn = (Ir.v nbj *: Ir.Int nb) +: Ir.v jn in
        let src_idx =
          match conv with
          | Some _ ->
              (* HWIO weights: the GEMM k coordinate decomposes into the
                 receptive-field tap (kh, kw, c); the column is oc *)
              let ws = Shape.to_array b_src.shape in
              let tap = decompose_flat kk [| ws.(0); ws.(1); ws.(2) |] in
              [| tap.(0); tap.(1); tap.(2); nn |]
          | None ->
              let i1, i2 = if transpose_b then (nn, kk) else (kk, nn) in
              operand_index b_src i1 i2
        in
        let src_idx = Index_map.physical b_src.layout ~rank:(Shape.rank b_src.shape) src_idx in
        let dst = [| Ir.v kbi; Ir.v nbj; Ir.v jn; Ir.v jk |] in
        let load = Ir.Load (resolve ts b_src, src_idx) in
        let body =
          if padded then
            [
              Ir.If
                ( kk <: Ir.Int k &&: (nn <: Ir.Int n),
                  [ Ir.Store (bp, dst, load) ],
                  [ Ir.Store (bp, dst, Ir.Float 0.) ] );
            ]
          else [ Ir.Store (bp, dst, load) ]
        in
        [
          for_ kbi (Ir.Int 0) (Ir.Int kblocks)
            [
              for_ nbj (Ir.Int 0) (Ir.Int nblocks)
                [
                  for_ jn (Ir.Int 0) (Ir.Int nb)
                    [ for_ jk (Ir.Int 0) (Ir.Int kb) body ];
                ];
            ];
        ]
  in

  (* ---- the microkernel call ---- *)
  let kbase = Ir.v ks *: Ir.Int bs in
  let a_addr, a_stride =
    match apack with
    | Some ap -> (Ir.Addr (ap, [| Ir.Int 0; Ir.Int 0; Ir.Int 0 |]), mb * kb)
    | None ->
        ( Ir.Addr (resolve ts a_src, [| Ir.v mpsi; kbase; Ir.Int 0; Ir.Int 0 |]),
          mb * kb )
  in
  let b_addr, b_stride =
    match bpack with
    | Some bp ->
        ( Ir.Addr (bp, [| kbase; Ir.v npsi; Ir.Int 0; Ir.Int 0 |]),
          nblocks * nb * kb )
    | None ->
        ( Ir.Addr (resolve ts b_src, [| kbase; Ir.v npsi; Ir.Int 0; Ir.Int 0 |]),
          nblocks * nb * kb )
  in
  let brgemm_call =
    Ir.Call
      ( "brgemm",
        [
          bs_eff; Ir.Int mb; Ir.Int nb; Ir.Int kb;
          a_addr; Ir.Int a_stride;
          b_addr; Ir.Int b_stride;
          Ir.Addr (cacc, [| Ir.v nsi; Ir.Int 0; Ir.Int 0 |]);
        ] )
  in

  (* ---- post groups ---- *)
  let post1_groups, post3_groups =
    List.partition
      (fun (g : Fused_op.post_group) ->
        match g.g_anchor with Post1 | Post2 -> true | Post3 -> false)
      f.post_groups
  in
  if conv <> None && post3_groups <> [] then
    invalid_arg
      "Lower_tunable: conv chains cannot host reduction post-ops (anchor #3 \
       schedules 2-D points)";
  let post1_ops = List.concat_map (fun (g : Fused_op.post_group) -> g.g_ops) post1_groups in
  (* value flowing out of the post#1 chain *)
  let staged_lt =
    match List.rev post1_ops with last :: _ -> Op.output last | [] -> c_lt
  in

  (* post anchor #1: write back the accumulator through the fused eltwise
     chain. [acc_value] is the expression carrying the matmul result at
     the current element (C' in the plain template, the summed partials in
     the k-sliced variant). *)
  let row = (Ir.v mpsi *: Ir.Int mb) +: Ir.v mbi in
  let col = (Ir.v npsi *: Ir.Int nb) +: Ir.v nbi in
  let point =
    match conv with
    | None -> Array.append out_batch [| row; col |]
    | Some _ ->
        (* the GEMM row is the flattened output pixel (n, oh, ow) *)
        let cs = Shape.to_array c_lt.shape in
        let opix = decompose_flat row [| cs.(0); cs.(1); cs.(2) |] in
        [| opix.(0); opix.(1); opix.(2); col |]
  in
  let mk_anchor1_store acc_value =
    let chain = Chain.create ~tmap:(resolve ts) ~point in
    Chain.bind chain c_lt acc_value;
    List.iter (fun op -> ignore (Chain.apply chain op)) post1_ops;
    let value = Chain.value chain staged_lt in
    let target, idx = Index_map.access (resolve ts) staged_lt point in
    let store = Ir.Store (target, idx, value) in
    if not padded then [ store ]
    else begin
      let valid = row <: Ir.Int m &&: (col <: Ir.Int n) in
      if Layout.is_plain staged_lt.layout then [ Ir.If (valid, [ store ], []) ]
      else [ Ir.If (valid, [ store ], [ Ir.Store (target, idx, Ir.Float 0.) ]) ]
    end
  in
  let anchor1_store =
    mk_anchor1_store (Ir.Load (cacc, [| Ir.v nsi; Ir.v mbi; Ir.v nbi |]))
  in
  let anchor1 =
    [
      for_ nsi (Ir.Int 0) (Ir.Int nsn)
        [
          Ir.Assign (npsi, (Ir.v npi *: Ir.Int nsn) +: Ir.v nsi);
          Ir.If
            ( Ir.v npsi <: Ir.Int nblocks,
              [
                for_ mbi (Ir.Int 0) (Ir.Int mb)
                  [ for_ nbi (Ir.Int 0) (Ir.Int nb) anchor1_store ];
              ],
              [] );
        ];
    ]
  in

  (* post anchor #3: reduction-led groups over the rows this task owns *)
  let anchor3 =
    List.concat_map
      (fun (g : Fused_op.post_group) ->
        let rowv = iv "row" and colv = iv "col" in
        let point col = Array.append out_batch [| Ir.v rowv; col |] in
        let staged = ref staged_lt in
        let rowaccs = ref [] in
        let new_chain col =
          let c = Chain.create ~tmap:(resolve ts) ~point:(point col) in
          List.iter (fun (lt, var) -> Chain.bind_var c lt var) !rowaccs;
          c
        in
        let segs = split_segments g.g_ops in
        let seg_stmts =
          List.concat_map
            (fun (elts, reduce) ->
              match reduce with
              | Some (rop : Op.t) ->
                  let rkind =
                    match rop.kind with Reduce rk -> rk | _ -> assert false
                  in
                  let acc = Ir.fresh_var ~name:"racc" (Ir.Scalar Dtype.F32) in
                  let chain = new_chain (Ir.v colv) in
                  (* persist every eltwise result so later segments can
                     load any of them (dead stores are cleaned by DSE) *)
                  let persist =
                    List.concat_map
                      (fun (op : Gc_graph_ir.Op.t) ->
                        let e = Chain.apply chain op in
                        let out = Op.output op in
                        let target, idx =
                          Index_map.access (resolve ts) out (point (Ir.v colv))
                        in
                        staged := out;
                        [ Ir.Store (target, idx, e) ])
                      elts
                  in
                  let v =
                    Chain.value chain
                      (match List.rev elts with
                      | last :: _ -> Op.output last
                      | [] -> !staged)
                  in
                  let body =
                    persist @ [ Ir.Assign (acc, reduce_combine rkind (Ir.v acc) v) ]
                  in
                  rowaccs := (Op.output rop, acc) :: !rowaccs;
                  [ Ir.Assign (acc, reduce_init rkind) ]
                  @ [ for_ colv (Ir.Int 0) (Ir.Int n) body ]
                  @
                  (match rkind with
                  | Mean ->
                      [ Ir.Assign (acc, Ir.Binop (Ir.Div, Ir.v acc, Ir.Float (float_of_int n))) ]
                  | _ -> [])
              | None -> (
                  match elts with
                  | [] -> []
                  | _ ->
                      (* persist every result, not just the last: an
                         intermediate output can escape the region when the
                         chain was cut at an escaping reduction (layernorm's
                         deviation feeding the final scale). Dead stores to
                         locals are cleaned by DSE. *)
                      let chain = new_chain (Ir.v colv) in
                      let stores =
                        List.concat_map
                          (fun (op : Gc_graph_ir.Op.t) ->
                            let e = Chain.apply chain op in
                            let out = Op.output op in
                            let target, idx =
                              Index_map.access (resolve ts) out
                                (point (Ir.v colv))
                            in
                            [ Ir.Store (target, idx, e) ])
                          elts
                      in
                      [ for_ colv (Ir.Int 0) (Ir.Int n) stores ]))
            segs
        in
        let row_body =
          [
            Ir.Assign (rowv, ((Ir.v mpsi *: Ir.Int mb) +: Ir.v mbi));
            Ir.If (Ir.v rowv <: Ir.Int m, seg_stmts, []);
          ]
        in
        [
          for_ msi (Ir.Int 0) (Ir.Int msn)
            [
              Ir.Assign (mpsi, (Ir.v mpi *: Ir.Int msn) +: Ir.v msi);
              Ir.If
                ( Ir.v mpsi <: Ir.Int mblocks,
                  [ for_ mbi (Ir.Int 0) (Ir.Int mb) row_body ],
                  [] );
            ];
        ])
      post3_groups
  in

  (* ---- the single-core kernel ---- *)
  let kernel =
    [
      Ir.Alloc cacc;
    ]
    @ (match apack with Some ap -> [ Ir.Alloc ap ] | None -> [])
    @ (match bpack with Some bp -> [ Ir.Alloc bp ] | None -> [])
    @ pack_b
    @ [
        for_ msi (Ir.Int 0) (Ir.Int msn)
          [
            Ir.Assign (mpsi, (Ir.v mpi *: Ir.Int msn) +: Ir.v msi);
            Ir.If
              ( Ir.v mpsi <: Ir.Int mblocks,
                [
                  Ir.Call
                    ( "zero",
                      [
                        Ir.Addr (cacc, [| Ir.Int 0; Ir.Int 0; Ir.Int 0 |]);
                        Ir.Int (nsn * mb * nb);
                      ] );
                  for_ ks (Ir.Int 0) (Ir.Int ksteps)
                    (pack_a
                    @ [
                        for_ nsi (Ir.Int 0) (Ir.Int nsn)
                          [
                            Ir.Assign (npsi, (Ir.v npi *: Ir.Int nsn) +: Ir.v nsi);
                            Ir.If (Ir.v npsi <: Ir.Int nblocks, [ brgemm_call ], []);
                          ];
                      ]);
                ]
                @ anchor1,
                [] );
          ];
      ]
    @ anchor3
  in

  (* ---- the k-slicing template variant (paper: inference on one sample
     "may have to apply k-slicing to extract additional parallelism from
     the reduction axis"): phase 1 computes kpn partial Cs in parallel,
     phase 2 sums them and runs the post-op chain ---- *)
  let ksliced_body () =
    if post3_groups <> [] then
      invalid_arg "Lower_tunable: k-slicing cannot host reduction post-ops";
    if batched then invalid_arg "Lower_tunable: k-slicing is a 2-D template";
    if conv <> None then
      invalid_arg
        "Lower_tunable: k-slicing does not support the conv im2col packing";
    let kpn = p.kpn in
    let kspn = Params.ksteps_per_slice p in
    let cpart =
      Ir.fresh_tensor ~name:"Cpart" ~storage:Ir.Local acc_dt
        [| kpn; mblocks; nblocks; mb; nb |]
    in
    let task = iv "task" and task2 = iv "task2" and ksl = iv "kslice" in
    let ks_lo = Ir.v ksl *: Ir.Int kspn in
    let ks_hi =
      Ir.Binop (Ir.Min, Ir.Int ksteps, (Ir.v ksl +: Ir.Int 1) *: Ir.Int kspn)
    in
    let phase1 =
      [ Ir.Alloc cacc ]
      @ (match apack with Some ap -> [ Ir.Alloc ap ] | None -> [])
      @ (match bpack with Some bp -> [ Ir.Alloc bp ] | None -> [])
      @ pack_b
      @ [
          for_ msi (Ir.Int 0) (Ir.Int msn)
            [
              Ir.Assign (mpsi, (Ir.v mpi *: Ir.Int msn) +: Ir.v msi);
              Ir.If
                ( Ir.v mpsi <: Ir.Int mblocks,
                  [
                    Ir.Call
                      ( "zero",
                        [
                          Ir.Addr (cacc, [| Ir.Int 0; Ir.Int 0; Ir.Int 0 |]);
                          Ir.Int (nsn * mb * nb);
                        ] );
                    Ir.For
                      {
                        v = ks; lo = ks_lo; hi = ks_hi; step = Ir.Int 1;
                        parallel = false; merge_tag = None;
                        body =
                          pack_a
                          @ [
                              for_ nsi (Ir.Int 0) (Ir.Int nsn)
                                [
                                  Ir.Assign (npsi, (Ir.v npi *: Ir.Int nsn) +: Ir.v nsi);
                                  Ir.If (Ir.v npsi <: Ir.Int nblocks, [ brgemm_call ], []);
                                ];
                            ];
                      };
                    (* store this slice's raw partials *)
                    for_ nsi (Ir.Int 0) (Ir.Int nsn)
                      [
                        Ir.Assign (npsi, (Ir.v npi *: Ir.Int nsn) +: Ir.v nsi);
                        Ir.If
                          ( Ir.v npsi <: Ir.Int nblocks,
                            [
                              for_ mbi (Ir.Int 0) (Ir.Int mb)
                                [
                                  for_ nbi (Ir.Int 0) (Ir.Int nb)
                                    [
                                      Ir.Store
                                        ( cpart,
                                          [| Ir.v ksl; Ir.v mpsi; Ir.v npsi; Ir.v mbi; Ir.v nbi |],
                                          Ir.Load (cacc, [| Ir.v nsi; Ir.v mbi; Ir.v nbi |]) );
                                    ];
                                ];
                            ],
                            [] );
                      ];
                  ],
                  [] );
            ];
        ]
    in
    let partial_sum =
      List.fold_left
        (fun acc s ->
          Ir.Binop
            ( Ir.Add,
              acc,
              Ir.Load (cpart, [| Ir.Int s; Ir.v mpsi; Ir.v npsi; Ir.v mbi; Ir.v nbi |]) ))
        (Ir.Load (cpart, [| Ir.Int 0; Ir.v mpsi; Ir.v npsi; Ir.v mbi; Ir.v nbi |]))
        (List.init (kpn - 1) (fun i -> i + 1))
    in
    let phase2 =
      [
        for_ msi (Ir.Int 0) (Ir.Int msn)
          [
            Ir.Assign (mpsi, (Ir.v mpi *: Ir.Int msn) +: Ir.v msi);
            Ir.If
              ( Ir.v mpsi <: Ir.Int mblocks,
                [
                  for_ nsi (Ir.Int 0) (Ir.Int nsn)
                    [
                      Ir.Assign (npsi, (Ir.v npi *: Ir.Int nsn) +: Ir.v nsi);
                      Ir.If
                        ( Ir.v npsi <: Ir.Int nblocks,
                          [
                            for_ mbi (Ir.Int 0) (Ir.Int mb)
                              [ for_ nbi (Ir.Int 0) (Ir.Int nb) (mk_anchor1_store partial_sum) ];
                          ],
                          [] );
                    ];
                ],
                [] );
          ];
      ]
    in
    [
      Ir.Alloc cpart;
      for_ ~parallel:true task (Ir.Int 0) (Ir.Int (p.mpn * p.npn * kpn))
        ([
           Ir.Assign (ksl, Ir.Binop (Ir.Mod, Ir.v task, Ir.Int kpn));
           Ir.Assign (mpi, Ir.Binop (Ir.Div, Ir.Binop (Ir.Div, Ir.v task, Ir.Int kpn), Ir.Int p.npn));
           Ir.Assign (npi, Ir.Binop (Ir.Mod, Ir.Binop (Ir.Div, Ir.v task, Ir.Int kpn), Ir.Int p.npn));
         ]
        @ phase1);
      for_ ~parallel:true task2 (Ir.Int 0) (Ir.Int (p.mpn * p.npn))
        ([
           Ir.Assign (mpi, Ir.Binop (Ir.Div, Ir.v task2, Ir.Int p.npn));
           Ir.Assign (npi, Ir.Binop (Ir.Mod, Ir.v task2, Ir.Int p.npn));
         ]
        @ phase2);
    ]
  in

  (* ---- outer parallel structure ---- *)
  let body =
    if p.kpn > 1 && not batched then ksliced_body ()
    else if batched then
      let batch_total = Shape.numel batch_dims in
      [
        Ir.Assign (mpi, Ir.Int 0);
        Ir.Assign (npi, Ir.Int 0);
        for_ ~parallel:true ?tag:f.merge_tag bi (Ir.Int 0) (Ir.Int batch_total)
          kernel;
      ]
    else
      (* one flattened parallel loop over the whole core grid (the
         collapse(2) idiom): the runtime parallelizes the outermost loop
         only, so nesting would strand the inner grid dimension *)
      let task = iv "task" in
      [
        for_ ~parallel:true ?tag:f.merge_tag task (Ir.Int 0)
          (Ir.Int (p.mpn * p.npn))
          ([
             Ir.Assign (mpi, Ir.Binop (Ir.Div, Ir.v task, Ir.Int p.npn));
             Ir.Assign (npi, Ir.Binop (Ir.Mod, Ir.v task, Ir.Int p.npn));
           ]
          @ kernel);
      ]
  in
  (* Allocs for the on-demand internal locals go at function entry so they
     are visible to every parallel task. *)
  let local_allocs =
    Hashtbl.fold (fun _ t acc -> Ir.Alloc t :: acc) ts.locals []
  in
  let params =
    let seen = Hashtbl.create 8 in
    List.filter_map ts.tmap (f.f_inputs @ f.f_outputs)
    |> List.filter (fun (t : Ir.tensor) ->
           match t.storage with
           | Ir.Param ->
               if Hashtbl.mem seen t.tid then false
               else begin
                 Hashtbl.add seen t.tid ();
                 true
               end
           | _ -> false)
    |> List.map (fun t -> Ir.Ptensor t)
  in
  { Ir.fname = f.fname; params; body = local_allocs @ body }
