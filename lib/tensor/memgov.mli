(** Memory budget governor: byte-accurate accounting of buffer storage
    against a configurable process-wide budget.

    Production serving stacks bound the memory a request fleet may pin so
    one burst cannot OOM-kill the process; this module is that bound for
    the repository. Every {!Buffer.create} (tensors, engine arenas, pools,
    reference-interpreter temporaries — all buffer storage flows through
    that one chokepoint) charges its storage bytes here while a budget is
    armed, and registers a finalizer that releases the same bytes when the
    buffer is collected, so the ledger tracks live bytes exactly.

    Unarmed (no [GC_MEM_BUDGET_BYTES], no {!set_limit}) the cost at an
    allocation site is one atomic load. Armed, an allocation that would
    push usage past the budget is refused with a typed
    [Gc_errors.Resource_exhausted] naming the buffer, the requested size
    and the budget — the optimistic charge is rolled back first, so a
    refusal leaves the ledger untouched.

    The serving layer ({!Gc_serve}) additionally reads {!fill_fraction} to
    shrink its effective admission-queue depth as the budget fills
    (backpressure before exhaustion), and its drain path verifies the
    ledger returns to zero once requests, arenas and pools are released.

    The ["budget_exhausted"] fault-injection site ({!Gc_faultinject})
    fires inside {!charge}, so chaos tests exercise the exhaustion path
    deterministically without a real bytes squeeze. *)

(** [GC_MEM_BUDGET_BYTES]: the budget armed at program start ([None] when
    unset or unparsable; values are clamped to [>= 1]). *)
val env_budget_bytes : unit -> int option

(** Arm ([Some bytes]) or disarm ([None]) the budget. Raises
    [Invalid_input] on a non-positive budget. Disarming does not clear the
    ledger: buffers charged while armed still release on collection. *)
val set_limit : int option -> unit

val limit : unit -> int option
val enabled : unit -> bool

(** Live charged bytes. *)
val used : unit -> int

(** High-water mark of {!used} since the last {!reset_stats}. *)
val peak : unit -> int

(** Allocations refused over-budget (including injected ones). *)
val rejections : unit -> int

(** [used / limit], 0 when unarmed. The serving layer's backpressure
    signal. *)
val fill_fraction : unit -> float

(** Bytes still chargeable before the budget refuses ([None] when
    unarmed; clamped to [>= 0]). The compile cache's eviction trigger:
    residency decisions compare an entry's estimated bytes against this
    before compiling into the budget. *)
val headroom : unit -> int option

(** Reset {!peak} (to the current {!used}) and {!rejections}. *)
val reset_stats : unit -> unit

(** [charge ?name bytes] records [bytes] of live storage. Returns whether
    the charge was recorded (false when unarmed or [bytes <= 0]) — the
    caller must arrange a matching {!release} exactly when it returns
    true. Raises [Gc_errors.Resource_exhausted] (resource
    ["memory_budget"]) when the charge would exceed the budget, or when
    the ["budget_exhausted"] fault-injection site fires. *)
val charge : ?name:string -> int -> bool

(** [release bytes] returns [bytes] to the budget. *)
val release : int -> unit
