type t = {
  dtype : Dtype.t;
  shape : Shape.t;
  layout : Layout.t;
  buffer : Buffer.t;
}

let create ?name ?(layout = Layout.Plain) dtype shape =
  let n = Layout.physical_numel layout shape in
  { dtype; shape; layout; buffer = Buffer.create ?name dtype n }

let of_buffer ?(layout = Layout.Plain) shape buffer =
  let n = Layout.physical_numel layout shape in
  if Buffer.length buffer < n then
    invalid_arg "Tensor.of_buffer: buffer too small for layout";
  { dtype = Buffer.dtype buffer; shape; layout; buffer }

let dtype t = t.dtype
let shape t = t.shape
let layout t = t.layout
let buffer t = t.buffer
let numel t = Shape.numel t.shape
let get t idx = Buffer.get t.buffer (Layout.offset t.layout t.shape idx)
let set t idx v = Buffer.set t.buffer (Layout.offset t.layout t.shape idx) v

let item t =
  if numel t <> 1 then invalid_arg "Tensor.item: not a single-element tensor";
  if Shape.is_scalar t.shape then Buffer.get t.buffer 0
  else get t (Array.make (Shape.rank t.shape) 0)

let scalar dtype v =
  let t = create dtype Shape.scalar in
  Buffer.set t.buffer 0 v;
  t

let init ?layout dtype shape f =
  let t = create ?layout dtype shape in
  Shape.iter shape (fun idx -> set t idx (f idx));
  t

let of_float_list dtype shape vals =
  if List.length vals <> Shape.numel shape then
    invalid_arg "Tensor.of_float_list: wrong number of elements";
  let arr = Array.of_list vals in
  init dtype shape (fun idx -> arr.(Shape.offset shape idx))

(* splitmix64-style stateless PRNG: deterministic across platforms. *)
let splitmix seed i =
  let z = ref Int64.(add (of_int seed) (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L)) in
  z := Int64.(mul (logxor !z (shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L);
  z := Int64.(mul (logxor !z (shift_right_logical !z 27)) 0x94D049BB133111EBL);
  z := Int64.(logxor !z (shift_right_logical !z 31));
  (* 53 random bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical !z 11) /. 9007199254740992.

let random ?(seed = 42) ?(lo = -1.) ?(hi = 1.) dtype shape =
  let t = create dtype shape in
  let n = Shape.numel shape in
  if Dtype.is_float dtype then
    for i = 0 to n - 1 do
      Buffer.set t.buffer i (lo +. ((hi -. lo) *. splitmix seed i))
    done
  else
    for i = 0 to n - 1 do
      let u = splitmix seed i in
      let v = Float.of_int (int_of_float lo) +. Float.round (u *. (hi -. lo)) in
      Buffer.set t.buffer i v
    done;
  t

let fill t v = Buffer.fill t.buffer v

let copy t = { t with buffer = Buffer.copy t.buffer }

let to_float_array t =
  let n = numel t in
  let out = Array.make (max n 0) 0. in
  let i = ref 0 in
  Shape.iter t.shape (fun idx ->
      out.(!i) <- get t idx;
      incr i);
  out

let iter t f = Shape.iter t.shape (fun idx -> f idx (get t idx))

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.map2: shape mismatch";
  init a.dtype a.shape (fun idx -> f (get a idx) (get b idx))

let equal a b =
  Shape.equal a.shape b.shape
  &&
  let ok = ref true in
  Shape.iter a.shape (fun idx -> if get a idx <> get b idx then ok := false);
  !ok

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let m = ref 0. in
  Shape.iter a.shape (fun idx ->
      m := Float.max !m (Float.abs (get a idx -. get b idx)));
  !m

let allclose ?(rtol = 1e-5) ?(atol = 1e-6) a b =
  Shape.equal a.shape b.shape
  &&
  let ok = ref true in
  Shape.iter a.shape (fun idx ->
      let x = get a idx and y = get b idx in
      if Float.abs (x -. y) > atol +. (rtol *. Float.abs y) then ok := false);
  !ok

let pp fmt t =
  let n = numel t in
  Format.fprintf fmt "tensor<%a,%a,%a>[" Dtype.pp t.dtype Shape.pp t.shape
    Layout.pp t.layout;
  let shown = min n 16 in
  let vals = to_float_array t in
  for i = 0 to shown - 1 do
    if i > 0 then Format.fprintf fmt ", ";
    Format.fprintf fmt "%g" vals.(i)
  done;
  if n > shown then Format.fprintf fmt ", ...";
  Format.fprintf fmt "]"
