type t = {
  dtype : Dtype.t;
  shape : Shape.t;
  layout : Layout.t;
  buffer : Buffer.t;
}

let create ?name ?(layout = Layout.Plain) dtype shape =
  let n = Layout.physical_numel layout shape in
  { dtype; shape; layout; buffer = Buffer.create ?name dtype n }

let of_buffer ?(layout = Layout.Plain) shape buffer =
  let n = Layout.physical_numel layout shape in
  if Buffer.length buffer < n then
    invalid_arg "Tensor.of_buffer: buffer too small for layout";
  { dtype = Buffer.dtype buffer; shape; layout; buffer }

let dtype t = t.dtype
let shape t = t.shape
let layout t = t.layout
let buffer t = t.buffer
let numel t = Shape.numel t.shape
let get t idx = Buffer.get t.buffer (Layout.offset t.layout t.shape idx)
let set t idx v = Buffer.set t.buffer (Layout.offset t.layout t.shape idx) v

let item t =
  if numel t <> 1 then invalid_arg "Tensor.item: not a single-element tensor";
  if Shape.is_scalar t.shape then Buffer.get t.buffer 0
  else get t (Array.make (Shape.rank t.shape) 0)

let scalar dtype v =
  let t = create dtype Shape.scalar in
  Buffer.set t.buffer 0 v;
  t

let init ?layout dtype shape f =
  let t = create ?layout dtype shape in
  Shape.iter shape (fun idx -> set t idx (f idx));
  t

let of_float_list dtype shape vals =
  if List.length vals <> Shape.numel shape then
    invalid_arg "Tensor.of_float_list: wrong number of elements";
  let arr = Array.of_list vals in
  init dtype shape (fun idx -> arr.(Shape.offset shape idx))

(* splitmix64-style stateless PRNG: deterministic across platforms. *)
let splitmix seed i =
  let z = ref Int64.(add (of_int seed) (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L)) in
  z := Int64.(mul (logxor !z (shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L);
  z := Int64.(mul (logxor !z (shift_right_logical !z 27)) 0x94D049BB133111EBL);
  z := Int64.(logxor !z (shift_right_logical !z 31));
  (* 53 random bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical !z 11) /. 9007199254740992.

let random ?(seed = 42) ?(lo = -1.) ?(hi = 1.) dtype shape =
  let t = create dtype shape in
  let n = Shape.numel shape in
  if Dtype.is_float dtype then
    for i = 0 to n - 1 do
      Buffer.set t.buffer i (lo +. ((hi -. lo) *. splitmix seed i))
    done
  else
    for i = 0 to n - 1 do
      let u = splitmix seed i in
      let v = Float.of_int (int_of_float lo) +. Float.round (u *. (hi -. lo)) in
      Buffer.set t.buffer i v
    done;
  t

let fill t v = Buffer.fill t.buffer v

let copy t = { t with buffer = Buffer.copy t.buffer }

let to_float_array t =
  let n = numel t in
  let out = Array.make (max n 0) 0. in
  let i = ref 0 in
  Shape.iter t.shape (fun idx ->
      out.(!i) <- get t idx;
      incr i);
  out

let iter t f = Shape.iter t.shape (fun idx -> f idx (get t idx))

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.map2: shape mismatch";
  init a.dtype a.shape (fun idx -> f (get a idx) (get b idx))

let equal a b =
  Shape.equal a.shape b.shape
  &&
  let ok = ref true in
  Shape.iter a.shape (fun idx -> if get a idx <> get b idx then ok := false);
  !ok

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let m = ref 0. in
  Shape.iter a.shape (fun idx ->
      m := Float.max !m (Float.abs (get a idx -. get b idx)));
  !m

let allclose ?(rtol = 1e-5) ?(atol = 1e-6) a b =
  Shape.equal a.shape b.shape
  &&
  let ok = ref true in
  Shape.iter a.shape (fun idx ->
      let x = get a idx and y = get b idx in
      if Float.abs (x -. y) > atol +. (rtol *. Float.abs y) then ok := false);
  !ok

(* {2 Batch-dim surgery} — pad/slice/concat/split for bucketed
   specialization and request coalescing. Plain layouts only: row-major
   order makes a leading-dim region contiguous, so shapes differing only
   in dim 0 move as one block; other cases walk the index space. *)

let require_plain fn t =
  if not (Layout.is_plain t.layout) then
    invalid_arg (fn ^ ": blocked layouts unsupported")

let same_suffix a b =
  Shape.rank a = Shape.rank b
  && Shape.rank a >= 1
  &&
  let ok = ref true in
  for i = 1 to Shape.rank a - 1 do
    if Shape.dim a i <> Shape.dim b i then ok := false
  done;
  !ok

let pad_to t target =
  require_plain "Tensor.pad_to" t;
  if Shape.equal t.shape target then t
  else begin
    if Shape.rank target <> Shape.rank t.shape then
      invalid_arg "Tensor.pad_to: rank mismatch";
    for i = 0 to Shape.rank target - 1 do
      if Shape.dim target i < Shape.dim t.shape i then
        invalid_arg
          (Printf.sprintf "Tensor.pad_to: target %s smaller than %s on dim %d"
             (Shape.to_string target) (Shape.to_string t.shape) i)
    done;
    let out = create t.dtype target in
    if same_suffix t.shape target then
      Buffer.copy_range ~src:t.buffer ~soff:0 ~dst:out.buffer ~doff:0 (numel t)
    else Shape.iter t.shape (fun idx -> set out idx (get t idx));
    out
  end

let slice_to t target =
  require_plain "Tensor.slice_to" t;
  if Shape.equal t.shape target then t
  else begin
    if Shape.rank target <> Shape.rank t.shape then
      invalid_arg "Tensor.slice_to: rank mismatch";
    for i = 0 to Shape.rank target - 1 do
      if Shape.dim target i > Shape.dim t.shape i then
        invalid_arg
          (Printf.sprintf "Tensor.slice_to: target %s larger than %s on dim %d"
             (Shape.to_string target) (Shape.to_string t.shape) i)
    done;
    let out = create t.dtype target in
    if same_suffix t.shape target then
      Buffer.copy_range ~src:t.buffer ~soff:0 ~dst:out.buffer ~doff:0
        (Shape.numel target)
    else Shape.iter target (fun idx -> set out idx (get t idx));
    out
  end

let concat0 ts =
  match ts with
  | [] -> invalid_arg "Tensor.concat0: empty list"
  | t0 :: rest ->
      List.iter (require_plain "Tensor.concat0") ts;
      if Shape.rank t0.shape < 1 then
        invalid_arg "Tensor.concat0: rank must be >= 1";
      List.iter
        (fun t ->
          if not (Dtype.equal t.dtype t0.dtype) then
            invalid_arg "Tensor.concat0: dtype mismatch";
          if not (same_suffix t.shape t0.shape) then
            invalid_arg
              (Printf.sprintf "Tensor.concat0: %s and %s differ beyond dim 0"
                 (Shape.to_string t0.shape) (Shape.to_string t.shape)))
        rest;
      let total =
        List.fold_left (fun acc t -> acc + Shape.dim t.shape 0) 0 ts
      in
      let dims = Shape.to_array t0.shape in
      dims.(0) <- total;
      let out = create t0.dtype (Shape.of_array dims) in
      let off = ref 0 in
      List.iter
        (fun t ->
          let n = numel t in
          Buffer.copy_range ~src:t.buffer ~soff:0 ~dst:out.buffer ~doff:!off n;
          off := !off + n)
        ts;
      out

let split0 t sizes =
  require_plain "Tensor.split0" t;
  if Shape.rank t.shape < 1 then invalid_arg "Tensor.split0: rank must be >= 1";
  List.iter
    (fun s -> if s <= 0 then invalid_arg "Tensor.split0: sizes must be positive")
    sizes;
  let total = List.fold_left ( + ) 0 sizes in
  if total <> Shape.dim t.shape 0 then
    invalid_arg
      (Printf.sprintf "Tensor.split0: sizes sum to %d, dim 0 is %d" total
         (Shape.dim t.shape 0));
  let row = numel t / Shape.dim t.shape 0 in
  let off = ref 0 in
  List.map
    (fun s ->
      let dims = Shape.to_array t.shape in
      dims.(0) <- s;
      let out = create t.dtype (Shape.of_array dims) in
      Buffer.copy_range ~src:t.buffer ~soff:(!off * row) ~dst:out.buffer
        ~doff:0 (s * row);
      off := !off + s;
      out)
    sizes

let pp fmt t =
  let n = numel t in
  Format.fprintf fmt "tensor<%a,%a,%a>[" Dtype.pp t.dtype Shape.pp t.shape
    Layout.pp t.layout;
  let shown = min n 16 in
  let vals = to_float_array t in
  for i = 0 to shown - 1 do
    if i > 0 then Format.fprintf fmt ", ";
    Format.fprintf fmt "%g" vals.(i)
  done;
  if n > shown then Format.fprintf fmt ", ...";
  Format.fprintf fmt "]"
