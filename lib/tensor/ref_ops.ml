let map f t = Tensor.init (Tensor.dtype t) (Tensor.shape t) (fun idx -> f (Tensor.get t idx))

let relu = map (fun x -> Float.max x 0.)
let exp = map Stdlib.exp
let tanh = map Stdlib.tanh
let sqrt = map Stdlib.sqrt
let neg = map (fun x -> -.x)
let abs = map Float.abs
let sigmoid = map (fun x -> 1. /. (1. +. Stdlib.exp (-.x)))

let gelu_erf_scalar x =
  (* erf via Abramowitz & Stegun 7.1.26, |eps| <= 1.5e-7 *)
  let erf z =
    let sign = if z < 0. then -1. else 1. in
    let z = Float.abs z in
    let t = 1. /. (1. +. (0.3275911 *. z)) in
    let a1 = 0.254829592
    and a2 = -0.284496736
    and a3 = 1.421413741
    and a4 = -1.453152027
    and a5 = 1.061405429 in
    let poly = ((((((((a5 *. t) +. a4) *. t) +. a3) *. t) +. a2) *. t) +. a1) *. t in
    sign *. (1. -. (poly *. Stdlib.exp (-.(z *. z))))
  in
  0.5 *. x *. (1. +. erf (x /. Stdlib.sqrt 2.))

let gelu_erf = map gelu_erf_scalar

let gelu_tanh_scalar x =
  let c = Stdlib.sqrt (2. /. Float.pi) in
  0.5 *. x *. (1. +. Stdlib.tanh (c *. (x +. (0.044715 *. x *. x *. x))))

let gelu_tanh = map gelu_tanh_scalar
let reciprocal = map (fun x -> 1. /. x)
let round = map Float.round
let clip ~lo ~hi = map (fun x -> Float.max lo (Float.min hi x))

let map2 f a b =
  match Shape.broadcast (Tensor.shape a) (Tensor.shape b) with
  | None ->
      invalid_arg
        (Printf.sprintf "Ref_ops.map2: shapes %s and %s do not broadcast"
           (Shape.to_string (Tensor.shape a))
           (Shape.to_string (Tensor.shape b)))
  | Some out_shape ->
      let dt =
        (* wider dtype wins; floats beat ints *)
        let da = Tensor.dtype a and db = Tensor.dtype b in
        if Dtype.equal da db then da
        else if Dtype.is_float da && not (Dtype.is_float db) then da
        else if Dtype.is_float db && not (Dtype.is_float da) then db
        else if Dtype.size_bytes da >= Dtype.size_bytes db then da
        else db
      in
      Tensor.init dt out_shape (fun idx ->
          let ia = Shape.broadcast_index ~from:(Tensor.shape a) idx in
          let ib = Shape.broadcast_index ~from:(Tensor.shape b) idx in
          f (Tensor.get a ia) (Tensor.get b ib))

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let div = map2 ( /. )
let max = map2 Float.max
let min = map2 Float.min

type reduce_kind = Sum | Max | Min | Mean

let reduce kind ~axis ~keepdims t =
  let shape = Tensor.shape t in
  let rank = Shape.rank shape in
  let axis = if axis < 0 then axis + rank else axis in
  if axis < 0 || axis >= rank then invalid_arg "Ref_ops.reduce: bad axis";
  let n = Shape.dim shape axis in
  let out_shape =
    if keepdims then
      Shape.of_list
        (List.mapi
           (fun i d -> if i = axis then 1 else d)
           (Shape.to_list shape))
    else Shape.of_list (List.filteri (fun i _ -> i <> axis) (Shape.to_list shape))
  in
  let dt = Tensor.dtype t in
  let out_dt = if Dtype.is_float dt then dt else Dtype.S32 in
  Tensor.init out_dt out_shape (fun oidx ->
      let iidx =
        if keepdims then Array.copy oidx
        else begin
          let a = Array.make rank 0 in
          let j = ref 0 in
          for i = 0 to rank - 1 do
            if i <> axis then begin
              a.(i) <- oidx.(!j);
              incr j
            end
          done;
          a
        end
      in
      let acc = ref None in
      for k = 0 to n - 1 do
        iidx.(axis) <- k;
        let v = Tensor.get t iidx in
        acc :=
          Some
            (match (!acc, kind) with
            | None, _ -> v
            | Some a, (Sum | Mean) -> a +. v
            | Some a, Max -> Float.max a v
            | Some a, Min -> Float.min a v)
      done;
      let v = Option.value !acc ~default:0. in
      match kind with Mean -> v /. float_of_int n | _ -> v)

let is_int8 dt = match (dt : Dtype.t) with S8 | U8 -> true | _ -> false

let matmul ?out_dtype a b =
  let sa = Tensor.shape a and sb = Tensor.shape b in
  if Shape.rank sa < 2 || Shape.rank sb < 2 then
    invalid_arg "Ref_ops.matmul: rank must be >= 2";
  let ra = Shape.rank sa and rb = Shape.rank sb in
  let m = Shape.dim sa (ra - 2)
  and ka = Shape.dim sa (ra - 1)
  and kb = Shape.dim sb (rb - 2)
  and n = Shape.dim sb (rb - 1) in
  if ka <> kb then
    invalid_arg
      (Printf.sprintf "Ref_ops.matmul: inner dims mismatch %d vs %d" ka kb);
  let batch_a = Shape.sub sa 0 (ra - 2) and batch_b = Shape.sub sb 0 (rb - 2) in
  let batch =
    match Shape.broadcast batch_a batch_b with
    | Some s -> s
    | None -> invalid_arg "Ref_ops.matmul: batch dims do not broadcast"
  in
  let int_path = is_int8 (Tensor.dtype a) && is_int8 (Tensor.dtype b) in
  let out_dt =
    match out_dtype with
    | Some d -> d
    | None -> if int_path then Dtype.S32 else Dtype.F32
  in
  let out_shape = Shape.concat batch (Shape.of_list [ m; n ]) in
  let out = Tensor.create out_dt out_shape in
  Shape.iter batch (fun bidx ->
      let aidx = Array.append (Shape.broadcast_index ~from:batch_a bidx) [| 0; 0 |] in
      let bidx' = Array.append (Shape.broadcast_index ~from:batch_b bidx) [| 0; 0 |] in
      let oidx = Array.append bidx [| 0; 0 |] in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          if int_path then begin
            let acc = ref 0 in
            for k = 0 to ka - 1 do
              aidx.(ra - 2) <- i;
              aidx.(ra - 1) <- k;
              bidx'.(rb - 2) <- k;
              bidx'.(rb - 1) <- j;
              acc :=
                !acc
                + (int_of_float (Tensor.get a aidx)
                  * int_of_float (Tensor.get b bidx'))
            done;
            oidx.(Array.length oidx - 2) <- i;
            oidx.(Array.length oidx - 1) <- j;
            Tensor.set out oidx (float_of_int !acc)
          end
          else begin
            let acc = ref 0. in
            for k = 0 to ka - 1 do
              aidx.(ra - 2) <- i;
              aidx.(ra - 1) <- k;
              bidx'.(rb - 2) <- k;
              bidx'.(rb - 1) <- j;
              acc := !acc +. (Tensor.get a aidx *. Tensor.get b bidx')
            done;
            oidx.(Array.length oidx - 2) <- i;
            oidx.(Array.length oidx - 1) <- j;
            Tensor.set out oidx !acc
          end
        done
      done);
  out

let conv2d ?out_dtype ~strides:(sh, sw) ~pads:(pt, pl, _pb, _pr)
    ~dilations:(dh, dw) x w =
  let sx = Tensor.shape x and sw_ = Tensor.shape w in
  if Shape.rank sx <> 4 || Shape.rank sw_ <> 4 then
    invalid_arg "Ref_ops.conv2d: input must be NHWC, weights HWIO (rank 4)";
  let n = Shape.dim sx 0 and h = Shape.dim sx 1 and iw = Shape.dim sx 2
  and c = Shape.dim sx 3 in
  let kh = Shape.dim sw_ 0 and kw = Shape.dim sw_ 1 and wc = Shape.dim sw_ 2
  and oc = Shape.dim sw_ 3 in
  if c <> wc then invalid_arg "Ref_ops.conv2d: channel mismatch";
  let keff_h = ((kh - 1) * dh) + 1 and keff_w = ((kw - 1) * dw) + 1 in
  let oh = ((h + pt + _pb - keff_h) / sh) + 1
  and ow = ((iw + pl + _pr - keff_w) / sw) + 1 in
  if oh <= 0 || ow <= 0 then
    invalid_arg "Ref_ops.conv2d: kernel exceeds padded input";
  let int_path = is_int8 (Tensor.dtype x) && is_int8 (Tensor.dtype w) in
  let out_dt =
    match out_dtype with
    | Some d -> d
    | None -> if int_path then Dtype.S32 else Dtype.F32
  in
  let out = Tensor.create out_dt (Shape.of_list [ n; oh; ow; oc ]) in
  let xi = [| 0; 0; 0; 0 |] and wi = [| 0; 0; 0; 0 |] in
  let oi = [| 0; 0; 0; 0 |] in
  for b = 0 to n - 1 do
    for r = 0 to oh - 1 do
      for q = 0 to ow - 1 do
        for o = 0 to oc - 1 do
          let facc = ref 0. and iacc = ref 0 in
          for p = 0 to kh - 1 do
            let ih = (r * sh) - pt + (p * dh) in
            if ih >= 0 && ih < h then
              for s = 0 to kw - 1 do
                let iw' = (q * sw) - pl + (s * dw) in
                if iw' >= 0 && iw' < iw then
                  for ch = 0 to c - 1 do
                    xi.(0) <- b;
                    xi.(1) <- ih;
                    xi.(2) <- iw';
                    xi.(3) <- ch;
                    wi.(0) <- p;
                    wi.(1) <- s;
                    wi.(2) <- ch;
                    wi.(3) <- o;
                    if int_path then
                      iacc :=
                        !iacc
                        + (int_of_float (Tensor.get x xi)
                          * int_of_float (Tensor.get w wi))
                    else facc := !facc +. (Tensor.get x xi *. Tensor.get w wi)
                  done
              done
          done;
          oi.(0) <- b;
          oi.(1) <- r;
          oi.(2) <- q;
          oi.(3) <- o;
          Tensor.set out oi
            (if int_path then float_of_int !iacc else !facc)
        done
      done
    done
  done;
  out

let colsum t =
  let rank = Shape.rank (Tensor.shape t) in
  reduce Sum ~axis:(rank - 2) ~keepdims:false t

let softmax ~axis t =
  let mx = reduce Max ~axis ~keepdims:true t in
  let e = exp (sub t mx) in
  let s = reduce Sum ~axis ~keepdims:true e in
  div e s

let quantize ~scale ~zp dtype t =
  if not (is_int8 dtype) then invalid_arg "Ref_ops.quantize: dtype must be u8/s8";
  Tensor.init dtype (Tensor.shape t) (fun idx ->
      Float.round (Tensor.get t idx /. scale) +. float_of_int zp)

let dequantize ~scale ~zp t =
  Tensor.init Dtype.F32 (Tensor.shape t) (fun idx ->
      (Tensor.get t idx -. float_of_int zp) *. scale)
