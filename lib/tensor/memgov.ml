(* Memory budget governor. See memgov.mli. *)

(* The configured budget, in bytes. 0 = unarmed (the common case): the
   accounting fast path is then a single atomic load in [Buffer.create]. *)
let budget = Atomic.make 0
let used_bytes = Atomic.make 0
let peak_bytes = Atomic.make 0
let reject_count = Atomic.make 0

let env_budget_bytes () =
  match Sys.getenv_opt "GC_MEM_BUDGET_BYTES" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let set_limit = function
  | None -> Atomic.set budget 0
  | Some n ->
      if n < 1 then
        Gc_errors.invalid_input
          ~ctx:[ ("requested", string_of_int n) ]
          "Memgov.set_limit: budget must be >= 1 byte";
      Atomic.set budget n

let () = match env_budget_bytes () with Some n -> set_limit (Some n) | None -> ()

let limit () = match Atomic.get budget with 0 -> None | n -> Some n
let enabled () = Atomic.get budget > 0
let used () = Atomic.get used_bytes
let peak () = Atomic.get peak_bytes
let rejections () = Atomic.get reject_count

let fill_fraction () =
  match Atomic.get budget with
  | 0 -> 0.
  | b -> float_of_int (Atomic.get used_bytes) /. float_of_int b

let headroom () =
  match Atomic.get budget with
  | 0 -> None
  | b -> Some (max 0 (b - Atomic.get used_bytes))

let reset_stats () =
  Atomic.set peak_bytes (Atomic.get used_bytes);
  Atomic.set reject_count 0

let release bytes =
  if bytes > 0 then ignore (Atomic.fetch_and_add used_bytes (-bytes))

let reject ~name ~bytes ~lim ~now =
  Atomic.incr reject_count;
  let ctx =
    [
      ("requested", string_of_int bytes);
      ("used", string_of_int now);
      ("budget", string_of_int lim);
    ]
  in
  let ctx = if name = "" then ctx else ("buffer", name) :: ctx in
  Gc_errors.resource_exhausted ~ctx ~resource:"memory_budget"
    (Printf.sprintf
       "memory budget exceeded: %s%d bytes requested, %d of %d in use"
       (if name = "" then "" else name ^ ": ")
       bytes now lim)

let charge ?(name = "") bytes =
  let lim = Atomic.get budget in
  if lim = 0 || bytes <= 0 then false
  else begin
    (if Gc_faultinject.enabled ()
     && Gc_faultinject.should_fire Gc_faultinject.site_budget_exhausted then begin
       Atomic.incr reject_count;
       Gc_errors.resource_exhausted ~resource:"memory_budget"
         ~ctx:
           [
             ("buffer", name);
             ("requested", string_of_int bytes);
             ("injected", "true");
           ]
         "injected memory-budget exhaustion"
     end);
    let now = Atomic.fetch_and_add used_bytes bytes + bytes in
    if now > lim then begin
      (* roll the optimistic add back before rejecting, so a refused
         allocation leaves the ledger exactly as it found it *)
      ignore (Atomic.fetch_and_add used_bytes (-bytes));
      reject ~name ~bytes ~lim ~now:(now - bytes)
    end;
    (* monotonic high-water mark (racy CAS loop, exact under quiescence) *)
    let rec bump () =
      let p = Atomic.get peak_bytes in
      if now > p && not (Atomic.compare_and_set peak_bytes p now) then bump ()
    in
    bump ();
    true
  end
