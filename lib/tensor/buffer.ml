open Bigarray

type f32_arr = (float, float32_elt, c_layout) Array1.t
type s32_arr = (int32, int32_elt, c_layout) Array1.t
type s8_arr = (int, int8_signed_elt, c_layout) Array1.t
type u8_arr = (int, int8_unsigned_elt, c_layout) Array1.t
type s64_arr = (int64, int64_elt, c_layout) Array1.t

type t =
  | F32 of f32_arr
  | Bf16 of f32_arr
  | S32 of s32_arr
  | S8 of s8_arr
  | U8 of u8_arr
  | S64 of s64_arr

(* Typed errors (PR 4): boundary and size violations raise
   {!Gc_errors.Error} carrying the buffer's identity (caller-supplied
   name, dtype) and the requested vs actual extents, so a fault deep in
   the engine still names the tensor it happened on. *)
let bad ?(name = "") what ctx =
  let ctx = if name = "" then ctx else ("buffer", name) :: ctx in
  Gc_errors.invalid_input ~ctx what

(* Storage bytes per element as actually allocated (bf16 is widened to an
   f32 array in this storage model, so it costs 4 bytes, not 2). *)
let elem_bytes : Dtype.t -> int = function
  | F32 | Bf16 | S32 -> 4
  | S8 | U8 -> 1
  | S64 -> 8

let create ?name dtype n =
  if n < 0 then
    bad ?name "Buffer.create: negative length"
      [ ("dtype", Dtype.to_string dtype); ("requested", string_of_int n) ];
  Gc_faultinject.alloc_check ~dtype:(Dtype.to_string dtype) ~numel:n;
  let bytes = elem_bytes dtype * n in
  let charged = Memgov.charge ?name bytes in
  (* Release exactly what was charged when the bigarray (a custom block,
     hence finalisable) is collected, so the ledger tracks live bytes. *)
  let rel : 'a 'b 'c. ('a, 'b, 'c) Array1.t -> unit =
   fun a -> if charged then Gc.finalise (fun _ -> Memgov.release bytes) a
  in
  match (dtype : Dtype.t) with
  | F32 ->
      let a = Array1.create float32 c_layout n in
      rel a;
      Array1.fill a 0.;
      F32 a
  | Bf16 ->
      let a = Array1.create float32 c_layout n in
      rel a;
      Array1.fill a 0.;
      Bf16 a
  | S32 ->
      let a = Array1.create int32 c_layout n in
      rel a;
      Array1.fill a 0l;
      S32 a
  | S8 ->
      let a = Array1.create int8_signed c_layout n in
      rel a;
      Array1.fill a 0;
      S8 a
  | U8 ->
      let a = Array1.create int8_unsigned c_layout n in
      rel a;
      Array1.fill a 0;
      U8 a
  | S64 ->
      let a = Array1.create int64 c_layout n in
      rel a;
      Array1.fill a 0L;
      S64 a

let dtype = function
  | F32 _ -> Dtype.F32
  | Bf16 _ -> Dtype.Bf16
  | S32 _ -> Dtype.S32
  | S8 _ -> Dtype.S8
  | U8 _ -> Dtype.U8
  | S64 _ -> Dtype.S64

let length = function
  | F32 a | Bf16 a -> Array1.dim a
  | S32 a -> Array1.dim a
  | S8 a -> Array1.dim a
  | U8 a -> Array1.dim a
  | S64 a -> Array1.dim a

let get t i =
  match t with
  | F32 a | Bf16 a -> Array1.get a i
  | S32 a -> Int32.to_float (Array1.get a i)
  | S8 a -> float_of_int (Array1.get a i)
  | U8 a -> float_of_int (Array1.get a i)
  | S64 a -> Int64.to_float (Array1.get a i)

let set t i v =
  match t with
  | F32 a -> Array1.set a i v
  | Bf16 a -> Array1.set a i (Dtype.round_to Bf16 v)
  | S32 a -> Array1.set a i (Int32.of_float (Dtype.round_to S32 v))
  | S8 a -> Array1.set a i (int_of_float (Dtype.round_to S8 v))
  | U8 a -> Array1.set a i (int_of_float (Dtype.round_to U8 v))
  | S64 a -> Array1.set a i (Int64.of_float (Dtype.round_to S64 v))

let unsafe_get t i =
  match t with
  | F32 a | Bf16 a -> Array1.unsafe_get a i
  | S32 a -> Int32.to_float (Array1.unsafe_get a i)
  | S8 a -> float_of_int (Array1.unsafe_get a i)
  | U8 a -> float_of_int (Array1.unsafe_get a i)
  | S64 a -> Int64.to_float (Array1.unsafe_get a i)

let unsafe_set t i v =
  match t with
  | F32 a -> Array1.unsafe_set a i v
  | Bf16 a -> Array1.unsafe_set a i (Dtype.round_to Bf16 v)
  | S32 a -> Array1.unsafe_set a i (Int32.of_float (Dtype.round_to S32 v))
  | S8 a -> Array1.unsafe_set a i (int_of_float (Dtype.round_to S8 v))
  | U8 a -> Array1.unsafe_set a i (int_of_float (Dtype.round_to U8 v))
  | S64 a -> Array1.unsafe_set a i (Int64.of_float (Dtype.round_to S64 v))

let get_int t i =
  match t with
  | S32 a -> Int32.to_int (Array1.get a i)
  | S8 a -> Array1.get a i
  | U8 a -> Array1.get a i
  | S64 a -> Int64.to_int (Array1.get a i)
  | F32 _ | Bf16 _ -> int_of_float (Float.round (get t i))

let set_int t i v =
  match t with
  | S32 a -> Array1.set a i (Int32.of_int v)
  | S8 a -> Array1.set a i (int_of_float (Dtype.round_to S8 (float_of_int v)))
  | U8 a -> Array1.set a i (int_of_float (Dtype.round_to U8 (float_of_int v)))
  | S64 a -> Array1.set a i (Int64.of_int v)
  | F32 _ | Bf16 _ -> set t i (float_of_int v)

let fill t v =
  for i = 0 to length t - 1 do
    set t i v
  done

let blit_impl name ~src ~dst =
  if not (Dtype.equal (dtype src) (dtype dst)) then
    bad ~name "Buffer.blit: dtype mismatch"
      [
        ("src_dtype", Dtype.to_string (dtype src));
        ("dst_dtype", Dtype.to_string (dtype dst));
      ];
  if length src > length dst then
    bad ~name "Buffer.blit: dst too small"
      [
        ("dtype", Dtype.to_string (dtype src));
        ("requested", string_of_int (length src));
        ("actual", string_of_int (length dst));
      ];
  match (src, dst) with
  | F32 a, F32 b | Bf16 a, Bf16 b ->
      Array1.blit a (Array1.sub b 0 (Array1.dim a))
  | S32 a, S32 b -> Array1.blit a (Array1.sub b 0 (Array1.dim a))
  | S8 a, S8 b -> Array1.blit a (Array1.sub b 0 (Array1.dim a))
  | U8 a, U8 b -> Array1.blit a (Array1.sub b 0 (Array1.dim a))
  | S64 a, S64 b -> Array1.blit a (Array1.sub b 0 (Array1.dim a))
  | _ -> assert false

let blit ~src ~dst = blit_impl "" ~src ~dst
let blit_named ~name ~src ~dst = blit_impl name ~src ~dst

let as_f32 = function
  | F32 a | Bf16 a -> a
  | _ -> invalid_arg "Buffer.as_f32: not an f32/bf16 buffer"

let as_s32 = function S32 a -> a | _ -> invalid_arg "Buffer.as_s32"
let as_s8 = function S8 a -> a | _ -> invalid_arg "Buffer.as_s8"
let as_u8 = function U8 a -> a | _ -> invalid_arg "Buffer.as_u8"
let as_s64 = function S64 a -> a | _ -> invalid_arg "Buffer.as_s64"

let fill_range ?name t off len v =
  if len < 0 || off < 0 || off + len > length t then
    bad ?name "Buffer.fill_range: out of bounds"
      [
        ("dtype", Dtype.to_string (dtype t));
        ("off", string_of_int off);
        ("len", string_of_int len);
        ("actual", string_of_int (length t));
      ];
  (* Whole-buffer fills go through [Array1.fill] — a C-level memset-class
     primitive. Partial ranges use explicit loops rather than
     [Array1.fill (Array1.sub ...)]: [sub] allocates a fresh bigarray
     descriptor per call, and zero-fills run on the engine's steady-state
     (allocation-free) execute path. The whole-buffer case matters: arena
     reuse zero-fills every served buffer, and a scalar loop over a large
     intermediate (e.g. attention scores) costs more than the allocation
     it replaces. *)
  let whole = off = 0 && len = length t in
  match t with
  | F32 a ->
      if whole then Array1.fill a v
      else
        for i = off to off + len - 1 do
          Array1.unsafe_set a i v
        done
  | Bf16 a ->
      let v = Dtype.round_to Bf16 v in
      if whole then Array1.fill a v
      else
        for i = off to off + len - 1 do
          Array1.unsafe_set a i v
        done
  | S32 a ->
      let v = Int32.of_float (Dtype.round_to S32 v) in
      if whole then Array1.fill a v
      else
        for i = off to off + len - 1 do
          Array1.unsafe_set a i v
        done
  | S8 a ->
      let v = int_of_float (Dtype.round_to S8 v) in
      if whole then Array1.fill a v
      else
        for i = off to off + len - 1 do
          Array1.unsafe_set a i v
        done
  | U8 a ->
      let v = int_of_float (Dtype.round_to U8 v) in
      if whole then Array1.fill a v
      else
        for i = off to off + len - 1 do
          Array1.unsafe_set a i v
        done
  | S64 a ->
      let v = Int64.of_float (Dtype.round_to S64 v) in
      if whole then Array1.fill a v
      else
        for i = off to off + len - 1 do
          Array1.unsafe_set a i v
        done

let copy_range ?name ~src ~soff ~dst ~doff len =
  if soff < 0 || doff < 0 || len < 0 || soff + len > length src
     || doff + len > length dst
  then
    bad ?name "Buffer.copy_range: out of bounds"
      [
        ("src_dtype", Dtype.to_string (dtype src));
        ("dst_dtype", Dtype.to_string (dtype dst));
        ("soff", string_of_int soff);
        ("doff", string_of_int doff);
        ("len", string_of_int len);
        ("src_len", string_of_int (length src));
        ("dst_len", string_of_int (length dst));
      ];
  match (src, dst) with
  | F32 a, F32 b | Bf16 a, Bf16 b | Bf16 a, F32 b ->
      Array1.blit (Array1.sub a soff len) (Array1.sub b doff len)
  | S32 a, S32 b -> Array1.blit (Array1.sub a soff len) (Array1.sub b doff len)
  | S8 a, S8 b -> Array1.blit (Array1.sub a soff len) (Array1.sub b doff len)
  | U8 a, U8 b -> Array1.blit (Array1.sub a soff len) (Array1.sub b doff len)
  | S64 a, S64 b -> Array1.blit (Array1.sub a soff len) (Array1.sub b doff len)
  | _ ->
      for i = 0 to len - 1 do
        unsafe_set dst (doff + i) (unsafe_get src (soff + i))
      done

let copy t =
  let out = create (dtype t) (length t) in
  blit ~src:t ~dst:out;
  out

let equal a b =
  Dtype.equal (dtype a) (dtype b)
  && length a = length b
  &&
  let n = length a in
  let rec go i = i >= n || (get a i = get b i && go (i + 1)) in
  go 0
