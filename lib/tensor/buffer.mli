(** Flat element buffers backed by Bigarrays.

    Buffers are untyped memory as far as the compiler is concerned (Tensor
    IR flattens every tensor to a 1-D buffer); the dtype determines the
    element representation and the saturation/rounding applied on stores.
    Bf16 is stored widened to f32, with bf16 rounding applied on every
    store, so bf16 numerics are faithful while reads stay cheap. *)

type f32_arr = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
type s32_arr = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
type s8_arr = (int, Bigarray.int8_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
type u8_arr = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
type s64_arr = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t =
  | F32 of f32_arr
  | Bf16 of f32_arr  (** widened storage; stores round to bf16 *)
  | S32 of s32_arr
  | S8 of s8_arr
  | U8 of u8_arr
  | S64 of s64_arr

(** Storage bytes per element as actually allocated (bf16 is stored
    widened to f32, so it costs 4 bytes/element). This is the unit the
    {!Memgov} budget governor accounts in. *)
val elem_bytes : Dtype.t -> int

(** [create ?name dtype n] allocates a zero-filled buffer of [n]
    elements. Errors (negative length, injected allocation faults) raise
    {!Gc_errors.Error} carrying [name] when given. While a {!Memgov}
    budget is armed, the storage bytes are charged against it first — an
    over-budget allocation raises [Resource_exhausted] naming the buffer
    and the budget, and charged buffers release their bytes back to the
    ledger when collected. *)
val create : ?name:string -> Dtype.t -> int -> t

val dtype : t -> Dtype.t
val length : t -> int

(** Generic element access, widening to float. Stores saturate / round
    according to the buffer dtype. Bounds-checked. *)
val get : t -> int -> float

val set : t -> int -> float -> unit

(** Unchecked variants for kernel inner loops. *)
val unsafe_get : t -> int -> float

val unsafe_set : t -> int -> float -> unit

(** Integer access (rounds the stored float for float buffers). *)
val get_int : t -> int -> int

val set_int : t -> int -> int -> unit

val fill : t -> float -> unit

(** [blit ~src ~dst] copies [length src] elements; dtypes must match.
    Mismatches raise {!Gc_errors.Error} ([Invalid_input]) carrying both
    dtypes and the requested vs actual extents; [blit_named] additionally
    names the destination buffer in the diagnostic. *)
val blit : src:t -> dst:t -> unit

val blit_named : name:string -> src:t -> dst:t -> unit

(** Typed accessors: return the underlying Bigarray or raise
    [Invalid_argument] when the dtype does not match. Used by the
    microkernels to get monomorphic inner loops. *)
val as_f32 : t -> f32_arr

val as_s32 : t -> s32_arr
val as_s8 : t -> s8_arr
val as_u8 : t -> u8_arr
val as_s64 : t -> s64_arr

(** [fill_range t off len v] sets [len] elements starting at [off].
    Out-of-bounds ranges raise {!Gc_errors.Error} with the buffer's
    identity ([?name]), dtype and requested vs actual extent. *)
val fill_range : ?name:string -> t -> int -> int -> float -> unit

(** [copy_range ~src ~soff ~dst ~doff len] copies [len] elements with
    dtype conversion when the buffers differ. Out-of-bounds ranges raise
    {!Gc_errors.Error} with identity and extents, as for
    {!fill_range}. *)
val copy_range : ?name:string -> src:t -> soff:int -> dst:t -> doff:int -> int -> unit

(** Copy into a fresh buffer of the same dtype. *)
val copy : t -> t

(** Structural equality of contents (same dtype, length, elements). *)
val equal : t -> t -> bool
