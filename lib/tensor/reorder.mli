(** Layout conversion, dtype casts and padding — the data-movement
    operations the compiler inserts at graph boundaries and between Tunable
    OPs with mismatched blocked layouts. *)

(** [to_layout t layout] copies [t] into a fresh tensor with the same
    logical contents under [layout]. Block padding is zero-filled. [name]
    flows into the destination buffer's error diagnostics. *)
val to_layout : ?name:string -> Tensor.t -> Layout.t -> Tensor.t

(** [cast t dtype] converts elementwise (saturating / rounding per dtype). *)
val cast : ?name:string -> Tensor.t -> Dtype.t -> Tensor.t

(** [transpose t perm] permutes logical dimensions; result is plain. *)
val transpose : Tensor.t -> int array -> Tensor.t

(** [pad t target] zero-pads each dimension of [t] up to [target]
    (dimension-wise ≥ check). Result is plain. *)
val pad : Tensor.t -> Shape.t -> Tensor.t

(** [unpad t target] crops each dimension down to [target]. *)
val unpad : Tensor.t -> Shape.t -> Tensor.t

(** Number of elements moved by a reorder between two layouts of the same
    logical shape — the cost-model quantity. *)
val moved_elements : Shape.t -> int
