let to_layout ?name t layout =
  let out = Tensor.create ?name ~layout (Tensor.dtype t) (Tensor.shape t) in
  Shape.iter (Tensor.shape t) (fun idx -> Tensor.set out idx (Tensor.get t idx));
  out

let cast ?name t dtype =
  let out =
    Tensor.create ?name ~layout:(Tensor.layout t) dtype (Tensor.shape t)
  in
  Shape.iter (Tensor.shape t) (fun idx -> Tensor.set out idx (Tensor.get t idx));
  out

let transpose t perm =
  let shape = Tensor.shape t in
  let rank = Shape.rank shape in
  if Array.length perm <> rank then invalid_arg "Reorder.transpose: bad perm";
  let seen = Array.make rank false in
  Array.iter
    (fun p ->
      if p < 0 || p >= rank || seen.(p) then
        invalid_arg "Reorder.transpose: invalid permutation";
      seen.(p) <- true)
    perm;
  let out_shape = Shape.of_array (Array.map (Shape.dim shape) perm) in
  let out = Tensor.create (Tensor.dtype t) out_shape in
  Shape.iter out_shape (fun oidx ->
      let iidx = Array.make rank 0 in
      Array.iteri (fun i p -> iidx.(p) <- oidx.(i)) perm;
      Tensor.set out oidx (Tensor.get t iidx));
  out

let pad t target =
  let shape = Tensor.shape t in
  if Shape.rank target <> Shape.rank shape then
    invalid_arg "Reorder.pad: rank mismatch";
  for i = 0 to Shape.rank shape - 1 do
    if Shape.dim target i < Shape.dim shape i then
      invalid_arg "Reorder.pad: target smaller than source"
  done;
  let out = Tensor.create (Tensor.dtype t) target in
  Shape.iter shape (fun idx -> Tensor.set out idx (Tensor.get t idx));
  out

let unpad t target =
  let shape = Tensor.shape t in
  if Shape.rank target <> Shape.rank shape then
    invalid_arg "Reorder.unpad: rank mismatch";
  for i = 0 to Shape.rank shape - 1 do
    if Shape.dim target i > Shape.dim shape i then
      invalid_arg "Reorder.unpad: target larger than source"
  done;
  let out = Tensor.create (Tensor.dtype t) target in
  Shape.iter target (fun idx -> Tensor.set out idx (Tensor.get t idx));
  out

let moved_elements shape = 2 * Shape.numel shape
