(** Reference (layout-transparent, unoptimized) tensor operations.

    These are the semantic ground truth for every DNN operation the
    compiler supports: constant folding evaluates with them, tests compare
    compiled results against them, and the baseline executor uses them for
    operations oneDNN primitives would run unfused. *)

(** {1 Elementwise unary} *)

val map : (float -> float) -> Tensor.t -> Tensor.t
val relu : Tensor.t -> Tensor.t
val exp : Tensor.t -> Tensor.t
val tanh : Tensor.t -> Tensor.t
val sqrt : Tensor.t -> Tensor.t
val neg : Tensor.t -> Tensor.t
val abs : Tensor.t -> Tensor.t
val sigmoid : Tensor.t -> Tensor.t

(** Exact (erf-based) GELU, used as ground truth for the decomposed tanh
    approximation (they agree to ~1e-3). *)
val gelu_erf : Tensor.t -> Tensor.t

(** Tanh-approximation GELU — the form the compiler decomposes into basic
    ops: 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³))). *)
val gelu_tanh : Tensor.t -> Tensor.t

val reciprocal : Tensor.t -> Tensor.t
val round : Tensor.t -> Tensor.t
val clip : lo:float -> hi:float -> Tensor.t -> Tensor.t

(** {1 Elementwise binary with NumPy broadcast} *)

val map2 : (float -> float -> float) -> Tensor.t -> Tensor.t -> Tensor.t
val add : Tensor.t -> Tensor.t -> Tensor.t
val sub : Tensor.t -> Tensor.t -> Tensor.t
val mul : Tensor.t -> Tensor.t -> Tensor.t
val div : Tensor.t -> Tensor.t -> Tensor.t
val max : Tensor.t -> Tensor.t -> Tensor.t
val min : Tensor.t -> Tensor.t -> Tensor.t

(** {1 Reductions} *)

type reduce_kind = Sum | Max | Min | Mean

(** [reduce kind ~axis ~keepdims t]. With [keepdims] the reduced axis stays
    as size 1 (needed for broadcasting the result back, e.g. softmax). *)
val reduce : reduce_kind -> axis:int -> keepdims:bool -> Tensor.t -> Tensor.t

(** {1 Contractions} *)

(** [matmul ?out_dtype a b]: batched matrix multiply over the last two
    dimensions with NumPy-style batch broadcast. Float inputs accumulate in
    f64 and produce [out_dtype] (default f32). Int8 inputs (u8/s8 × s8)
    accumulate exactly in s32 and produce [out_dtype] (default s32). *)
val matmul : ?out_dtype:Dtype.t -> Tensor.t -> Tensor.t -> Tensor.t

(** [conv2d ~strides:(sh,sw) ~pads:(pt,pl,pb,pr) ~dilations:(dh,dw) x w]:
    direct scalar 2-D convolution, NHWC activations × HWIO weights, output
    [N; OH; OW; OC]. Out-of-bounds taps contribute zero (implicit padding).
    Float inputs produce [out_dtype] (default f32); int8 inputs accumulate
    exactly in s32. Ground truth for the im2col-to-BRGEMM lowering. *)
val conv2d :
  ?out_dtype:Dtype.t ->
  strides:int * int ->
  pads:int * int * int * int ->
  dilations:int * int ->
  Tensor.t ->
  Tensor.t ->
  Tensor.t

(** Column sums of the last-two-dims matrix: reduce over the
    second-to-last axis. Used by the int8 weight-compensation term. *)
val colsum : Tensor.t -> Tensor.t

(** {1 Composite references (test oracles)} *)

val softmax : axis:int -> Tensor.t -> Tensor.t

(** Quantize to [dtype] (u8/s8): round(x / scale) + zp, saturating. *)
val quantize : scale:float -> zp:int -> Dtype.t -> Tensor.t -> Tensor.t

(** Dequantize to f32: (x - zp) · scale. *)
val dequantize : scale:float -> zp:int -> Tensor.t -> Tensor.t
