(** Dense tensors: a dtype, a logical shape, a memory layout and a flat
    buffer. Logical indexing is layout-transparent — [get]/[set] map through
    the layout — so reference computations and tests never need to know how
    a tensor is blocked. Kernels access {!buffer} directly. *)

type t

(** [create ?name ?layout dtype shape] allocates a zero tensor. The buffer
    length is the layout's physical element count (including block
    padding). [name] flows into the buffer's error diagnostics (memory
    budget rejections, bounds violations). *)
val create : ?name:string -> ?layout:Layout.t -> Dtype.t -> Shape.t -> t

(** Wrap an existing buffer. Raises [Invalid_argument] if the buffer is
    smaller than the layout's physical size or dtypes mismatch. *)
val of_buffer : ?layout:Layout.t -> Shape.t -> Buffer.t -> t

val dtype : t -> Dtype.t
val shape : t -> Shape.t
val layout : t -> Layout.t
val buffer : t -> Buffer.t
val numel : t -> int

(** [get t idx] / [set t idx v]: logical multi-index access through the
    layout. *)
val get : t -> int array -> float

val set : t -> int array -> float -> unit

(** Scalar (rank-0 or single-element) convenience. *)
val item : t -> float

val scalar : Dtype.t -> float -> t

(** [init dtype shape f] builds a plain tensor with [f idx] per element. *)
val init : ?layout:Layout.t -> Dtype.t -> Shape.t -> (int array -> float) -> t

(** [of_float_list dtype shape vals] (row-major). *)
val of_float_list : Dtype.t -> Shape.t -> float list -> t

(** Deterministic pseudo-random tensor (splitmix-style PRNG on [seed]).
    Floats are uniform in [lo, hi); integer dtypes are uniform integers in
    [lo, hi]. *)
val random : ?seed:int -> ?lo:float -> ?hi:float -> Dtype.t -> Shape.t -> t

val fill : t -> float -> unit
val copy : t -> t

(** Row-major logical contents as a float array (layout-independent). *)
val to_float_array : t -> float array

(** [iter t f] calls [f idx value] for every logical element. *)
val iter : t -> (int array -> float -> unit) -> unit

(** [map2 f a b] elementwise on same-shape tensors, result dtype of [a]. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** Exact logical equality (same shape, same values; layouts may differ). *)
val equal : t -> t -> bool

(** [allclose ?rtol ?atol a b]: true when shapes match and every pair of
    elements satisfies |x-y| <= atol + rtol*|y|. *)
val allclose : ?rtol:float -> ?atol:float -> t -> t -> bool

(** Largest absolute difference between corresponding elements. *)
val max_abs_diff : t -> t -> float

(** {2 Batch-dim surgery} — building blocks for bucketed specialization
    (pad a request up to its bucket, slice the result back) and request
    coalescing (concat member inputs along dim 0, split outputs per
    ticket). Plain layouts only; shapes differing only in the leading dim
    move as a single contiguous block. All return fresh tensors except
    when the target shape already matches, where the input is returned
    as-is (treat results as read-only). *)

(** [pad_to t target] embeds [t] at the origin of a zero tensor of shape
    [target] (every target dim >= the source dim). *)
val pad_to : t -> Shape.t -> t

(** [slice_to t target] copies the origin-anchored [target] region out of
    [t] (every target dim <= the source dim). *)
val slice_to : t -> Shape.t -> t

(** [concat0 ts] stacks tensors along dim 0; all must share dtype and
    trailing dims. *)
val concat0 : t list -> t

(** [split0 t sizes] cuts [t] along dim 0 into pieces of the given sizes
    (positive, summing to dim 0). *)
val split0 : t -> int list -> t list

(** Pretty-print (truncated for large tensors). *)
val pp : Format.formatter -> t -> unit
