open Gc_tensor
open Gc_microkernel
open Gc_lowering
module Json = Gc_observe.Json
module Counters = Gc_observe.Counters

type entry = {
  e_key : string;
  e_op : string;
  e_m : int;
  e_n : int;
  e_k : int;
  e_batch : int;
  e_dtype : string;
  e_post_ops : string;
  e_machine : string;
  e_mpn : int;
  e_npn : int;
  e_kpn : int;
  e_mb : int;
  e_nb : int;
  e_kb : int;
  e_bs : int;
  e_loop_order : string;
  e_expected_ms : float;
  e_static_ms : float;
  e_measured_at : float;
}

type t = (string, entry) Hashtbl.t

let schema_version = "gc-tune-db/1"

let sanitize s =
  String.map (fun c -> if c = '#' || c = '\n' then '_' else c) s

let key ~scope ~op_index ~op ~dtype ~post_ops ~machine =
  String.concat "#"
    [
      sanitize scope;
      string_of_int op_index;
      sanitize op;
      Dtype.to_string dtype;
      "post:" ^ sanitize post_ops;
      sanitize (Machine.descriptor machine);
    ]

let scope_of_key k =
  match String.index_opt k '#' with
  | Some i -> String.sub k 0 i
  | None -> k

let create () : t = Hashtbl.create 16
let lookup (db : t) k = Hashtbl.find_opt db k
let store (db : t) (e : entry) = Hashtbl.replace db e.e_key e

let remove_scope (db : t) scope =
  let doomed =
    Hashtbl.fold
      (fun k _ acc -> if scope_of_key k = scope then k :: acc else acc)
      db []
  in
  List.iter (Hashtbl.remove db) doomed;
  List.length doomed

let entries (db : t) = Hashtbl.fold (fun _ e acc -> e :: acc) db []

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("key", Json.String e.e_key);
      ("op", Json.String e.e_op);
      ("m", Json.Int e.e_m);
      ("n", Json.Int e.e_n);
      ("k", Json.Int e.e_k);
      ("batch", Json.Int e.e_batch);
      ("dtype", Json.String e.e_dtype);
      ("post_ops", Json.String e.e_post_ops);
      ("machine", Json.String e.e_machine);
      ("mpn", Json.Int e.e_mpn);
      ("npn", Json.Int e.e_npn);
      ("kpn", Json.Int e.e_kpn);
      ("mb", Json.Int e.e_mb);
      ("nb", Json.Int e.e_nb);
      ("kb", Json.Int e.e_kb);
      ("bs", Json.Int e.e_bs);
      ("loop_order", Json.String e.e_loop_order);
      ("expected_ms", Json.Float e.e_expected_ms);
      ("static_ms", Json.Float e.e_static_ms);
      ("measured_at", Json.Float e.e_measured_at);
    ]

let entry_of_json j =
  let str k = match Json.member k j with Some (Json.String s) -> Some s | _ -> None in
  let int k =
    match Json.member k j with
    | Some (Json.Int i) -> Some i
    | Some (Json.Float f) -> Some (int_of_float f)
    | _ -> None
  in
  let flt k =
    match Json.member k j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match
    ( (str "key", str "op", str "dtype", str "machine"),
      (int "m", int "n", int "k", int "batch"),
      (int "mpn", int "npn", int "kpn"),
      (int "mb", int "nb", int "kb", int "bs"),
      (flt "expected_ms", flt "static_ms") )
  with
  | ( (Some e_key, Some e_op, Some e_dtype, Some e_machine),
      (Some e_m, Some e_n, Some e_k, Some e_batch),
      (Some e_mpn, Some e_npn, Some e_kpn),
      (Some e_mb, Some e_nb, Some e_kb, Some e_bs),
      (Some e_expected_ms, Some e_static_ms) ) ->
      Some
        {
          e_key;
          e_op;
          e_m;
          e_n;
          e_k;
          e_batch;
          e_dtype;
          e_post_ops = Option.value (str "post_ops") ~default:"";
          e_machine;
          e_mpn;
          e_npn;
          e_kpn;
          e_mb;
          e_nb;
          e_kb;
          e_bs;
          e_loop_order = Option.value (str "loop_order") ~default:"msi,ksi,nsi";
          e_expected_ms;
          e_static_ms;
          (* measured_at is new in this schema revision; entries written
             before it carry 0. and lose every merge tie-break, which is
             the right bias — re-measured data beats undated data *)
          e_measured_at = Option.value (flt "measured_at") ~default:0.;
        }
  | _ -> None

let warn path what = Printf.eprintf "gc_tuning: %s: %s\n%!" path what

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~machine path =
  let db = create () in
  if not (Sys.file_exists path) then db
  else begin
    let text = try Some (read_file path) with Sys_error e -> warn path e; None in
    (match text with
    | None -> ()
    | Some text -> (
        match Json.of_string text with
        | Error e -> warn path ("invalid tuning DB (ignored): " ^ e)
        | Ok j -> (
            match (Json.member "schema" j, Json.member "entries" j) with
            | Some (Json.String s), Some (Json.List es) when s = schema_version ->
                let here = Machine.descriptor machine in
                List.iter
                  (fun ej ->
                    match entry_of_json ej with
                    | None ->
                        warn path "malformed tuning DB entry (skipped)"
                    | Some e ->
                        (* the drift-guard, extended to persisted configs: a
                           tile recorded for this machine that no longer
                           satisfies the register/L1 validity model must not
                           be applied *)
                        if
                          e.e_machine = here
                          && not
                               (match Dtype.of_string e.e_dtype with
                               | None -> false
                               | Some dt ->
                                   Ukernel_cost.valid ~machine ~dtype:dt
                                     ~mb:e.e_mb ~nb:e.e_nb ~kb:e.e_kb ~bs:e.e_bs)
                        then begin
                          Counters.tune_reject ();
                          warn path
                            (Printf.sprintf
                               "tuned config %dx%dx%d/bs%d invalid for this \
                                machine (rejected)"
                               e.e_mb e.e_nb e.e_kb e.e_bs)
                        end
                        else store db e)
                  es
            | _ -> warn path "unrecognized tuning DB schema (ignored)")));
    db
  end

let to_json (db : t) =
  let es =
    entries db
    |> List.sort (fun a b -> compare a.e_key b.e_key)
    |> List.map entry_to_json
  in
  Json.Obj [ ("schema", Json.String schema_version); ("entries", Json.List es) ]

let save_seq = Atomic.make 0

(* Serialize whole-file writers across processes: an advisory [Unix.lockf]
   region lock on a sidecar [path ^ ".lock"], held across the
   re-read/merge/rename sequence. Advisory is enough — every writer goes
   through [save]. Best-effort: if the sidecar cannot even be opened
   (read-only directory), run unlocked and let the write itself surface
   the real error as before. The sidecar is never removed (deleting it
   would race a peer that just opened it). *)
let with_lock path f =
  match
    Unix.openfile (path ^ ".lock") [ Unix.O_CREAT; Unix.O_WRONLY ] 0o644
  with
  | exception Unix.Unix_error _ -> f ()
  | fd ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (try Unix.lockf fd Unix.F_LOCK 0 with Unix.Unix_error _ -> ());
          f ())

(* Raw disk re-read for the merge: no per-machine drift filter and no
   reject counters — merge must carry other writers' entries through
   verbatim, exactly as [load] preserves other machines' rows. Any
   unreadable/invalid state degrades to "nothing to merge". *)
let load_raw path : t =
  let db = create () in
  (if Sys.file_exists path then
     match try Some (read_file path) with Sys_error _ -> None with
     | None -> ()
     | Some text -> (
         match Json.of_string text with
         | Error _ -> ()
         | Ok j -> (
             match (Json.member "schema" j, Json.member "entries" j) with
             | Some (Json.String s), Some (Json.List es)
               when s = schema_version ->
                 List.iter
                   (fun ej -> Option.iter (store db) (entry_of_json ej))
                   es
             | _ -> ())));
  db

(* Union the current disk contents into [db] before writing: the key that
   makes two concurrently-tuning processes additive instead of
   last-writer-wins. Per key, the newer [e_measured_at] wins; [drop_disk]
   lets the caller veto disk rows (demotion tombstones — without it a
   merge would resurrect entries another save wrote before we demoted
   their scope). *)
let merge_from_disk ~drop_disk path (db : t) =
  let disk = load_raw path in
  Hashtbl.iter
    (fun k (de : entry) ->
      if not (drop_disk de) then
        match Hashtbl.find_opt db k with
        | None -> Hashtbl.replace db k de
        | Some ours ->
            if de.e_measured_at > ours.e_measured_at then
              Hashtbl.replace db k de)
    disk

let save ?(drop_disk = fun _ -> false) path (db : t) =
  with_lock path (fun () ->
      merge_from_disk ~drop_disk path db;
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
          (Atomic.fetch_and_add save_seq 1)
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc (Json.to_string ~indent:2 (to_json db));
         output_char oc '\n';
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp path)

let params_for ~machine (e : entry) ~m ~n ~k ~batch ~dtype =
  let clamp v hi = max 1 (min v hi) in
  let p =
    {
      Params.m;
      n;
      k;
      batch;
      dtype;
      mpn = 1;
      npn = 1;
      kpn = 1;
      mb = e.e_mb;
      nb = e.e_nb;
      kb = e.e_kb;
      bs = e.e_bs;
      loop_order = e.e_loop_order;
    }
  in
  (* re-target grid and k-slicing at the actual instance: batched problems
     parallelize over the batch only, and grids/slices never exceed what
     the instance's block counts can occupy *)
  let p =
    if batch > 1 then p
    else
      { p with
        mpn = clamp e.e_mpn (Params.mblocks p);
        npn = clamp e.e_npn (Params.nblocks p);
      }
  in
  let p =
    if batch > 1 || e.e_kpn <= 1 then p
    else
      let p' = { p with kpn = e.e_kpn } in
      if Params.ksteps p' >= 2 * p'.kpn then p' else p
  in
  if Ukernel_cost.valid ~machine ~dtype ~mb:p.mb ~nb:p.nb ~kb:p.kb ~bs:p.bs then
    Some p
  else begin
    Counters.tune_reject ();
    None
  end
