open Gc_tensor
open Gc_microkernel
open Gc_lowering
open Gc_tensor_ir
module Sim = Gc_perfsim.Sim
module Counters = Gc_observe.Counters

type result = {
  best : Params.t;
  best_ms : float;
  static : Params.t;
  static_ms : float;
  measured : int;
  sim_filtered : int;
  elapsed_ms : float;
}

let acc_dtype (dt : Dtype.t) =
  match dt with S8 | U8 -> Dtype.S32 | _ -> Dtype.F32

let now_ms () = Unix.gettimeofday () *. 1000.

(* ---- simulator proxy -------------------------------------------------- *)

(* Synthetic Tensor IR probe of the template's loop nest under [p]: the
   parallel task loop over the core grid (or batch), per task the msn x nsn
   block sweep with a C'-zero and the batched reduction steps, and for
   k-slicing the second parallel partial-C sum phase. Constants everywhere
   — the simulator prices exactly the quantities the tuner wants proxied
   (microkernel model, cache level of the operand footprints, barriers). *)
let probe p =
  let open Ir in
  let a_t =
    fresh_tensor ~name:"tune_a" p.Params.dtype
      [| Params.m_pad p; Params.k_pad p |]
  in
  let b_t =
    fresh_tensor ~name:"tune_b" p.Params.dtype
      [| Params.k_pad p; Params.n_pad p |]
  in
  let c_t =
    fresh_tensor ~name:"tune_c" (acc_dtype p.Params.dtype)
      [| Params.m_pad p; Params.n_pad p |]
  in
  let tasks =
    if p.Params.batch > 1 then p.Params.batch
    else p.Params.mpn * p.Params.npn * p.Params.kpn
  in
  let idx name = fresh_var ~name Index in
  let for_ ?(parallel = false) v hi body =
    For { v; lo = int 0; hi = int hi; step = int 1; body; parallel; merge_tag = None }
  in
  let addr t = Addr (t, [| int 0; int 0 |]) in
  let brgemm bs =
    Call
      ( "brgemm",
        [
          int bs;
          int p.Params.mb;
          int p.Params.nb;
          int p.Params.kb;
          addr a_t;
          int 0;
          addr b_t;
          int 0;
          addr c_t;
        ] )
  in
  let task_body =
    [
      for_ (idx "mi") (Params.msn p)
        [
          for_ (idx "ni") (Params.nsn p)
            [
              Call ("zero", [ addr c_t; int (p.Params.mb * p.Params.nb) ]);
              for_ (idx "ks") (Params.ksteps_per_slice p) [ brgemm p.Params.bs ];
            ];
        ];
    ]
  in
  let body = [ for_ ~parallel:true (idx "task") tasks task_body ] in
  let body =
    if p.Params.kpn <= 1 then body
    else
      (* partial-C sum phase: one parallel row sweep reading kpn partials *)
      body
      @ [
          for_ ~parallel:true (idx "ri") (Params.m_pad p)
            [
              for_ (idx "ci") (Params.n_pad p)
                (List.init p.Params.kpn (fun _ ->
                     Store
                       ( c_t,
                         [| int 0; int 0 |],
                         Binop (Add, Load (c_t, [| int 0; int 0 |]), Load (c_t, [| int 0; int 0 |]))
                       )));
            ];
        ]
  in
  let f =
    { fname = "tune_probe"; params = [ Ptensor a_t; Ptensor b_t; Ptensor c_t ]; body }
  in
  ({ funcs = [ f ]; entry = "tune_probe"; init = None; globals = [] }, f)

let sim_ms ~machine p =
  let m, f = probe p in
  (Sim.cost_func ~machine m f).Sim.time_ms

(* ---- real-kernel measurement ------------------------------------------ *)

(* Modelled k-slicing reduction phase (mirrors Heuristic.cost): the only
   template piece the microkernel measurement cannot cover. Converted to
   milliseconds of the measuring machine. *)
let reduction_ms ~machine (p : Params.t) =
  if p.kpn <= 1 then 0.
  else begin
    let acc_elems_per_line = machine.Machine.cache_line / 4 in
    let elems = float_of_int (Params.m_pad p * Params.n_pad p) in
    let cpart_bytes = int_of_float elems * p.kpn * 4 in
    let per_line =
      if cpart_bytes <= machine.Machine.l2_size then machine.Machine.l2_latency
      else machine.Machine.llc_latency
    in
    let per_elem = per_line /. float_of_int acc_elems_per_line in
    let cycles =
      elems
      *. float_of_int (p.kpn + 1)
      *. per_elem
      /. float_of_int machine.Machine.cores
      +. machine.Machine.barrier_cycles
    in
    cycles /. (machine.Machine.freq_ghz *. 1e6)
  end

let max_measure_bytes = 256 * 1024 * 1024

let measure_ms ~machine ~slice_ms (p : Params.t) =
  let mblocks = Params.mblocks p
  and nblocks = Params.nblocks p
  and kblocks = Params.kblocks p in
  let msn = Params.msn p and nsn = Params.nsn p in
  let ksteps = Params.ksteps_per_slice p in
  let esize = Dtype.size_bytes p.dtype in
  let a_elems = mblocks * kblocks * p.mb * p.kb in
  let b_elems = kblocks * nblocks * p.nb * p.kb in
  let c_elems = mblocks * nblocks * p.mb * p.nb in
  if ((a_elems + b_elems) * esize) + (c_elems * 4) > max_measure_bytes then None
  else
    match
      (try
         Some
           ( Buffer.create p.dtype a_elems,
             Buffer.create (match p.dtype with U8 -> Dtype.S8 | d -> d) b_elems,
             Buffer.create (acc_dtype p.dtype) c_elems )
       with _ -> None)
    with
    | None -> None
    | Some (a, b, c) ->
        let a_offs = Array.make (max 1 p.bs) 0 in
        let b_offs = Array.make (max 1 p.bs) 0 in
        (* one core's task (grid position 0,0 of k-slice 0): the msn x nsn
           block sweep; [budget] caps microkernel calls so a sample never
           overruns its slice, scaling up the partial sweep linearly *)
        let run budget =
          let updates = ref 0 in
          (try
             for mi = 0 to msn - 1 do
               for ni = 0 to nsn - 1 do
                 for ks = 0 to ksteps - 1 do
                   let bs_eff = min p.bs (kblocks - (ks * p.bs)) in
                   if bs_eff > 0 then begin
                     for j = 0 to bs_eff - 1 do
                       let kb_i = (ks * p.bs) + j in
                       a_offs.(j) <- ((mi * kblocks) + kb_i) * p.mb * p.kb;
                       b_offs.(j) <- ((kb_i * nblocks) + ni) * p.nb * p.kb
                     done;
                     Brgemm.dispatch ~batch:bs_eff ~mb:p.mb ~nb:p.nb ~kb:p.kb ~a
                       ~a_offs ~b ~b_offs ~c
                       ~c_off:(((mi * nblocks) + ni) * p.mb * p.nb);
                     incr updates;
                     if !updates >= budget then raise Exit
                   end
                 done
               done
             done
           with Exit -> ());
          !updates
        in
        let total = max 1 (msn * nsn * ksteps) in
        ignore (run (min 4 total));
        (* warm: code paths + first-touch *)
        let deadline = now_ms () +. slice_ms in
        let min_sample = max 0.5 (slice_ms /. 8.) in
        let rec sample budget =
          let t0 = now_ms () in
          let did = run budget in
          let dt = now_ms () -. t0 in
          if dt >= min_sample || did >= total || now_ms () >= deadline then
            (dt, did)
          else sample (budget * 4)
        in
        let dt, did = sample (min 16 total) in
        if did = 0 || dt <= 0. then None
        else begin
          let task_ms = dt /. float_of_int did *. float_of_int total in
          let tasks =
            if p.batch > 1 then p.batch else p.mpn * p.npn * p.kpn
          in
          let waves = Shape.ceil_div tasks machine.Machine.cores in
          Some ((float_of_int waves *. task_ms) +. reduction_ms ~machine p)
        end

(* ---- the funnel -------------------------------------------------------- *)

let top_k = 12
let survivors = 5

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

let tune ~machine ~dtype ?(batch = 1) ?(allow_kslice = true) ~m ~n ~k ~budget_ms
    () =
  let t0 = now_ms () in
  let static =
    Heuristic.choose ~machine ~dtype ~batch ~allow_kslice ~m ~n ~k ()
  in
  (* best analytic configuration per microkernel tile, ranked by the model *)
  let by_model =
    Heuristic.tile_candidates ~machine ~dtype
    |> List.map (fun tile ->
           let p =
             Heuristic.choose ~machine ~dtype ~batch ~allow_kslice
               ~force_tile:tile ~m ~n ~k ()
           in
           (Heuristic.cost ~machine p, p))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd |> take top_k
  in
  (* simulator proxy keeps the cheapest few *)
  let by_sim =
    by_model
    |> List.map (fun p -> (sim_ms ~machine p, p))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd |> take survivors
  in
  let sim_filtered = List.length by_model - List.length by_sim in
  let candidates =
    static :: List.filter (fun p -> p <> static) by_sim
  in
  let budget = float_of_int (max 1 budget_ms) in
  let slice_ms =
    max 5. (budget /. float_of_int (List.length candidates + 1))
  in
  let measured = ref [] in
  List.iteri
    (fun i p ->
      (* the static choice always gets its sample, so the winner can be
         pinned tuned <= static; later candidates only start while budget
         remains *)
      if i = 0 || now_ms () -. t0 < budget then
        match measure_ms ~machine ~slice_ms p with
        | Some ms -> measured := (ms, p) :: !measured
        | None -> ())
    candidates;
  let elapsed_ms = now_ms () -. t0 in
  Counters.tune_run ();
  Counters.tune_time_ms (int_of_float elapsed_ms);
  match List.sort (fun (a, _) (b, _) -> compare a b) !measured with
  | [] ->
      (* nothing measurable (e.g. absurd problem size): static model wins *)
      {
        best = static;
        best_ms = 0.;
        static = static;
        static_ms = 0.;
        measured = 0;
        sim_filtered;
        elapsed_ms;
      }
  | (best_ms, best) :: _ as all ->
      let static_ms =
        match List.find_opt (fun (_, p) -> p = static) all with
        | Some (ms, _) -> ms
        | None -> best_ms
      in
      {
        best;
        best_ms;
        static;
        static_ms;
        measured = List.length all;
        sim_filtered;
        elapsed_ms;
      }
