open Gc_tensor
open Gc_microkernel
open Gc_lowering
module Counters = Gc_observe.Counters

type mode = Off | Consult | Sync

let parse_mode () =
  match Sys.getenv_opt "GC_TUNE" with
  | None -> Off
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "" | "0" | "off" | "false" -> Off
      | "sync" -> Sync
      | _ -> Consult)

let mode_ref = ref (parse_mode ())
let mode () = !mode_ref
let enabled () = !mode_ref <> Off
let set_mode m = mode_ref := m

let budget_override = ref None
let set_budget_ms b = budget_override := b

let budget_ms () =
  match !budget_override with
  | Some b -> max 1 b
  | None -> (
      match Sys.getenv_opt "GC_TUNE_BUDGET_MS" with
      | None -> 200
      | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 200))

(* A remembered tuning problem: enough to re-run the tune after an online
   demotion without a fresh compile. *)
type req = {
  r_machine : Machine.t;
  r_dtype : Dtype.t;
  r_batch : int;
  r_allow_kslice : bool;
  r_m : int;
  r_n : int;
  r_k : int;
}

(* All mutable state below is guarded by [mu]; tuning itself (the slow
   part) runs outside the lock. *)
let mu = Mutex.create ()
let cond = Condition.create ()
let db_path = ref (Sys.getenv_opt "GC_TUNE_DB")
let db : Tune_db.t option ref = ref None
let requests : (string, req) Hashtbl.t = Hashtbl.create 32
let jobs : (string * req) Queue.t = Queue.create ()
let pending : (string, unit) Hashtbl.t = Hashtbl.create 8
let worker_running = ref false
let busy = ref 0

(* Demotion tombstones: scope -> time of the last demote_scope. Passed to
   Tune_db.save as the drop_disk veto so merge-on-save cannot resurrect a
   demoted scope from an entry a concurrent writer (or our own earlier
   save) put on disk before the demotion; entries re-measured after the
   demotion carry a newer e_measured_at and pass through. *)
let demoted : (string, float) Hashtbl.t = Hashtbl.create 8

let drop_demoted (e : Tune_db.entry) =
  match Hashtbl.find_opt demoted (Tune_db.scope_of_key e.Tune_db.e_key) with
  | Some t -> e.Tune_db.e_measured_at <= t
  | None -> false

let ensure_db_locked ~machine =
  match !db with
  | Some d -> d
  | None ->
      let d =
        match !db_path with
        | Some p -> Tune_db.load ~machine p
        | None -> Tune_db.create ()
      in
      db := Some d;
      d

let persist_locked d =
  match !db_path with
  | None -> ()
  | Some p -> (
      try Tune_db.save ~drop_disk:drop_demoted p d
      with Sys_error e ->
        Printf.eprintf "gc_tuning: %s: save failed: %s\n%!" p e)

let op_of_key key =
  match String.split_on_char '#' key with
  | _ :: _ :: op :: _ -> op
  | _ -> "matmul"

let post_ops_of_key key =
  match String.split_on_char '#' key with
  | _ :: _ :: _ :: _ :: post :: _ ->
      if String.length post >= 5 && String.sub post 0 5 = "post:" then
        String.sub post 5 (String.length post - 5)
      else post
  | _ -> ""

let tune_now key (r : req) =
  let result =
    Tuner.tune ~machine:r.r_machine ~dtype:r.r_dtype ~batch:r.r_batch
      ~allow_kslice:r.r_allow_kslice ~m:r.r_m ~n:r.r_n ~k:r.r_k
      ~budget_ms:(budget_ms ()) ()
  in
  let b = result.Tuner.best in
  let entry =
    {
      Tune_db.e_key = key;
      e_op = op_of_key key;
      e_m = r.r_m;
      e_n = r.r_n;
      e_k = r.r_k;
      e_batch = r.r_batch;
      e_dtype = Dtype.to_string r.r_dtype;
      e_post_ops = post_ops_of_key key;
      e_machine = Machine.descriptor r.r_machine;
      e_mpn = b.Params.mpn;
      e_npn = b.Params.npn;
      e_kpn = b.Params.kpn;
      e_mb = b.Params.mb;
      e_nb = b.Params.nb;
      e_kb = b.Params.kb;
      e_bs = b.Params.bs;
      e_loop_order = b.Params.loop_order;
      e_expected_ms = result.Tuner.best_ms;
      e_static_ms = result.Tuner.static_ms;
      e_measured_at = Unix.gettimeofday ();
    }
  in
  Mutex.lock mu;
  let d = ensure_db_locked ~machine:r.r_machine in
  Tune_db.store d entry;
  persist_locked d;
  Mutex.unlock mu;
  result

let rec worker_loop () =
  Mutex.lock mu;
  while Queue.is_empty jobs do
    Condition.wait cond mu
  done;
  let key, r = Queue.pop jobs in
  incr busy;
  Mutex.unlock mu;
  (try ignore (tune_now key r)
   with e ->
     Printf.eprintf "gc_tuning: background tune failed: %s\n%!"
       (Printexc.to_string e));
  Mutex.lock mu;
  decr busy;
  Hashtbl.remove pending key;
  Condition.broadcast cond;
  Mutex.unlock mu;
  worker_loop ()

let enqueue_locked key r =
  if not (Hashtbl.mem pending key) then begin
    Hashtbl.replace pending key ();
    Queue.push (key, r) jobs;
    if not !worker_running then begin
      worker_running := true;
      ignore (Thread.create worker_loop ())
    end;
    Condition.broadcast cond
  end

let drain_background () =
  Mutex.lock mu;
  while (not (Queue.is_empty jobs)) || !busy > 0 do
    Condition.wait cond mu
  done;
  Mutex.unlock mu

let entries () =
  Mutex.lock mu;
  let es = match !db with Some d -> Tune_db.entries d | None -> [] in
  Mutex.unlock mu;
  es

let lookup ~machine ~dtype ~batch ~allow_kslice ~m ~n ~k ~tune_key =
  match !mode_ref with
  | Off -> None
  | _ ->
      let r =
        {
          r_machine = machine;
          r_dtype = dtype;
          r_batch = batch;
          r_allow_kslice = allow_kslice;
          r_m = m;
          r_n = n;
          r_k = k;
        }
      in
      Mutex.lock mu;
      Hashtbl.replace requests tune_key r;
      let d = ensure_db_locked ~machine in
      let entry = Tune_db.lookup d tune_key in
      Mutex.unlock mu;
      let miss () =
        Counters.tune_db_miss ();
        match !mode_ref with
        | Sync -> Some (tune_now tune_key r).Tuner.best
        | Consult ->
            Mutex.lock mu;
            enqueue_locked tune_key r;
            Mutex.unlock mu;
            None
        | Off -> None
      in
      (match entry with
      | Some e -> (
          match Tune_db.params_for ~machine e ~m ~n ~k ~batch ~dtype with
          | Some p ->
              Counters.tune_db_hit ();
              Some p
          | None ->
              (* params_for bumped tune_rejects; treat as a miss *)
              miss ())
      | None -> miss ())

let demote_scope scope =
  Mutex.lock mu;
  Hashtbl.replace demoted scope (Unix.gettimeofday ());
  let removed =
    match !db with Some d -> Tune_db.remove_scope d scope | None -> 0
  in
  if removed > 0 then Option.iter (fun _ -> persist_locked (Option.get !db)) !db_path;
  (* queue fresh measurements for every problem remembered under the scope *)
  Hashtbl.iter
    (fun key r ->
      if Tune_db.scope_of_key key = scope then enqueue_locked key r)
    requests;
  Mutex.unlock mu;
  removed

let set_db_path p =
  Mutex.lock mu;
  db_path := p;
  db := None;
  Mutex.unlock mu

let reset () =
  Mutex.lock mu;
  db := None;
  Hashtbl.reset requests;
  Queue.clear jobs;
  Hashtbl.reset pending;
  Hashtbl.reset demoted;
  Mutex.unlock mu

(* Install the consultation hook: linking gc_tuning activates DB-backed
   parameter choice for every [Heuristic.choose]/[choose_conv] call that
   carries a [tune_key]. *)
let () =
  Heuristic.set_tuned_lookup (fun ~machine ~dtype ~batch ~allow_kslice ~m ~n ~k
                                  ~tune_key ->
      lookup ~machine ~dtype ~batch ~allow_kslice ~m ~n ~k ~tune_key)
