open Gc_tensor
open Gc_microkernel
open Gc_lowering

(** The empirical tuner: close the static-model loop with measurement.

    Pipeline per tunable problem (the funnel narrows by cost):
    + every valid microkernel tile is given its best grid/k-slicing by the
      analytic model ([Heuristic.choose ~force_tile]) and the top
      candidates by {!Heuristic.cost} survive;
    + the performance simulator re-scores those on a synthetic Tensor IR
      probe of the template's loop nest (the cheap proxy — it prices
      cache-level traffic and barriers the closed-form model folds
      together) and keeps the best few;
    + the survivors, always including the static model's own choice, are
      measured on the real BRGEMM microkernel, single-threaded over one
      core's share of the blocked problem, under the wall-clock budget.

    The static choice is measured first and the winner is the measured
    minimum, so [best_ms <= static_ms] holds by construction — a tuned
    schedule can never regress below the static model on the measuring
    machine. *)

type result = {
  best : Params.t;  (** measured-best parameters *)
  best_ms : float;  (** projected one-execution time of [best] *)
  static : Params.t;  (** the static model's unaided choice *)
  static_ms : float;  (** projected one-execution time of [static] *)
  measured : int;  (** candidates actually measured (>= 1) *)
  sim_filtered : int;  (** candidates discarded by the simulator proxy *)
  elapsed_ms : float;  (** wall clock spent measuring *)
}

(** Simulator proxy: modelled milliseconds for one execution of the
    template instantiated with [p] (synthetic probe function, costed by
    [Perfsim.Sim]). *)
val sim_ms : machine:Machine.t -> Params.t -> float

(** Measure one candidate on the real microkernel: milliseconds for one
    projected execution (single-core task time scaled by the wave count,
    plus the modelled k-slicing reduction phase). [slice_ms] bounds the
    sampling time spent on this candidate; [None] when the problem cannot
    be measured (e.g. allocation failure) — callers skip the candidate. *)
val measure_ms : machine:Machine.t -> slice_ms:float -> Params.t -> float option

(** [tune ~machine ~dtype ?batch ?allow_kslice ~m ~n ~k ~budget_ms ()]:
    run the funnel under [budget_ms] of wall clock. Always measures the
    static choice even on a tiny budget; remaining candidates are measured
    until the budget is spent. Bumps the [tunes_run] and [tune_time_ms]
    counters. *)
val tune :
  machine:Machine.t ->
  dtype:Dtype.t ->
  ?batch:int ->
  ?allow_kslice:bool ->
  m:int ->
  n:int ->
  k:int ->
  budget_ms:int ->
  unit ->
  result
