open Gc_microkernel

(** Process-global autotuning policy: glues the {!Tuner} and the
    {!Tune_db} into the compile path via the [Heuristic] consultation
    hook (installed when this module is linked).

    Modes, from [GC_TUNE]:
    - unset / ["0"] / ["off"]: {!Off} — the static model runs untouched;
    - ["sync"]: {!Sync} — a DB miss tunes inline (compile blocks for up to
      [GC_TUNE_BUDGET_MS]) and the winner is used immediately;
    - any other value (canonically ["1"]): {!Consult} — a DB hit applies
      the tuned parameters, a miss uses the static model {e now} and
      queues a background tune so the cold compile stays fast; the next
      compile of the shape class picks the winner up.

    The database lives at [GC_TUNE_DB] (JSON, atomic rename writes); when
    unset it is in-memory only — tuning still works within the process
    but nothing persists. *)

type mode = Off | Consult | Sync

val mode : unit -> mode
val enabled : unit -> bool

(** Wall-clock measurement budget per tune, [GC_TUNE_BUDGET_MS]
    (default 200). *)
val budget_ms : unit -> int

(** Drop every DB entry of [scope] (the compile fingerprint prefix) and
    queue background re-tunes for the problems remembered under it —
    the online demotion path driven by [Gc_serve]'s latency EWMA. Returns
    the number of entries dropped. *)
val demote_scope : string -> int

(** Block until the background tune queue is empty and the worker idle
    (tests and benches; returns immediately when nothing is queued). *)
val drain_background : unit -> unit

(** All entries currently loaded ([] when the DB has not been consulted
    yet). *)
val entries : unit -> Tune_db.entry list

(** Direct consultation, exactly what the heuristic hook runs — exposed
    for tests and the tuning bench. *)
val lookup :
  machine:Machine.t ->
  dtype:Gc_tensor.Dtype.t ->
  batch:int ->
  allow_kslice:bool ->
  m:int ->
  n:int ->
  k:int ->
  tune_key:string ->
  Gc_lowering.Params.t option

(** {1 Test / bench overrides} (process-global; prefer the env vars) *)

val set_mode : mode -> unit
val set_db_path : string option -> unit
val set_budget_ms : int option -> unit  (** [None] restores the env/default *)

(** Forget the loaded DB, remembered problems and queued work (the
    on-disk file is untouched). *)
val reset : unit -> unit
