open Gc_tensor
open Gc_microkernel
open Gc_lowering

(** The persisted tuning database: measured-best template parameters keyed
    by what determines kernel behavior — op kind, shape class (the
    symbol-canonical compile fingerprint, so every bucketed poly
    specialization of one shape class shares entries), dtype, post-op
    chain, and machine descriptor. Concrete m/n/k are deliberately {e not}
    part of the key; they are recorded on the entry for audit and the
    stored tile/grid is re-validated against the actual problem at lookup
    ({!params_for}).

    The on-disk form is a single JSON document ([gc-tune-db/1]) written
    via temp-file + [Sys.rename], so readers never observe a torn write.
    Writers additionally take an advisory [Unix.lockf] lock on a sidecar
    [path ^ ".lock"] and {e merge} the current disk contents into the
    in-memory database before renaming (per key, the newer
    [e_measured_at] wins) — two processes tuning concurrently no longer
    lose each other's entries to last-writer-wins. A missing, truncated
    or otherwise invalid file degrades to an empty database — a warning
    on stderr, never a failed compilation. *)

type entry = {
  e_key : string;  (** full lookup key, ['#']-separated (see {!key}) *)
  e_op : string;  (** tunable op kind ("matmul" / "conv2d") *)
  e_m : int;  (** problem the measurement ran on (audit; not key material) *)
  e_n : int;
  e_k : int;
  e_batch : int;
  e_dtype : string;
  e_post_ops : string;  (** fused post-op chain, comma-joined kinds *)
  e_machine : string;  (** {!Machine.descriptor} of the measuring machine *)
  e_mpn : int;  (** winning core grid *)
  e_npn : int;
  e_kpn : int;
  e_mb : int;  (** winning microkernel tile *)
  e_nb : int;
  e_kb : int;
  e_bs : int;
  e_loop_order : string;
  e_expected_ms : float;  (** measured time of the winning config *)
  e_static_ms : float;  (** measured time of the static model's choice *)
  e_measured_at : float;
      (** Unix time the measurement ran; the merge-on-save tie-break
          (newest wins). [0.] for entries persisted before this field
          existed, so re-measured data always supersedes undated data. *)
}

type t = (string, entry) Hashtbl.t

val schema_version : string

(** [key ~scope ~op_index ~op ~dtype ~post_ops ~machine] joins the key
    components with ['#'] (components must not contain ['#']; [scope] is a
    fingerprint digest, [post_ops] comma-joined op-kind names). Entries of
    one compiled shape class share the [scope] prefix, which is what
    {!remove_scope} demotes. *)
val key :
  scope:string ->
  op_index:int ->
  op:string ->
  dtype:Dtype.t ->
  post_ops:string ->
  machine:Machine.t ->
  string

(** Scope prefix (first ['#'] component) of an entry key. *)
val scope_of_key : string -> string

val create : unit -> t
val lookup : t -> string -> entry option
val store : t -> entry -> unit

(** Drop every entry whose scope component equals [scope] (online
    demotion). Returns the number removed. *)
val remove_scope : t -> string -> int

val entries : t -> entry list

(** [load ~machine path]: parse the database at [path]. Corruption-safe:
    a missing file yields an empty database silently; an unreadable,
    unparsable or wrong-schema file yields an empty database with one
    stderr warning. Entries recorded for {e this} machine (descriptor
    match) whose tile fails [Ukernel_cost.valid] are dropped with a
    [tune_rejects] counter bump — the PR-2 drift-guard extended to
    persisted configs; entries from other machines are kept verbatim (they
    are unreachable through {!key} but survive round-trips). *)
val load : machine:Machine.t -> string -> t

(** Cross-process-safe persist. Under an advisory [Unix.lockf] lock on
    the sidecar [path ^ ".lock"]: re-read the file, union it into [db]
    (per key the newer [e_measured_at] wins — concurrent writers are
    additive, not last-writer-wins), serialize to
    [path ^ ".tmp.<pid>.<seq>"], then [Sys.rename] over [path].
    [drop_disk] (default: keep everything) vetoes disk rows before the
    union — demotion tombstones use it so a merge cannot resurrect
    entries whose scope was demoted after they were written. Raises
    [Sys_error] on an unwritable destination; an unopenable sidecar
    degrades to an unlocked (but still atomic) write. *)
val save : ?drop_disk:(entry -> bool) -> string -> t -> unit

(** [params_for ~machine e ~m ~n ~k ~batch ~dtype] re-targets the stored
    winner at an actual problem instance: rebuilds {!Params.t} with the
    real sizes, clamps the grid to the problem's block counts, degrades
    k-slicing to [kpn = 1] when the instance has too few reduction steps
    to slice, and re-checks [Ukernel_cost.valid] for [machine]. [None]
    (with a [tune_rejects] bump) when the stored tile is invalid here —
    the caller falls back to the static model. *)
val params_for :
  machine:Machine.t ->
  entry ->
  m:int ->
  n:int ->
  k:int ->
  batch:int ->
  dtype:Dtype.t ->
  Params.t option

val entry_to_json : entry -> Gc_observe.Json.t
val entry_of_json : Gc_observe.Json.t -> entry option
